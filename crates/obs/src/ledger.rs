//! The run ledger: one append-only JSONL record per engine run, written
//! next to the result cache, giving sign-off runs a cross-run trajectory
//! (wall time, stage split, cache behavior, memory) that per-run traces
//! cannot provide.
//!
//! Records are observational only — nothing reads them back into the
//! verification flow. The schema is versioned and flat so any line-
//! oriented tool (or [`crate::json::parse`]) can consume it.

use crate::json::{self, Value};
use pcv_trace::json::{f64_lit, str_lit};
use std::io::Write;
use std::path::Path;

/// Current ledger schema version. Version 2 added `outcome`,
/// `journal_hits` and `skipped`; version-1 lines still parse with those
/// fields defaulted (`"complete"`, 0, 0).
pub const SCHEMA: u64 = 2;

/// One engine run, as recorded in the ledger.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunRecord {
    /// Configuration fingerprint (the engine's v3 `config_hash`).
    pub config_fingerprint: u64,
    /// Fingerprint of the audited chip slice (victim set + netlist shape).
    pub chip_fingerprint: u64,
    /// Victims submitted.
    pub victims: usize,
    /// Worker threads used.
    pub workers: usize,
    /// `std::thread::available_parallelism` on the host that ran it.
    pub host_parallelism: usize,
    /// Verdicts answered from the incremental cache.
    pub cache_hits: usize,
    /// Jobs that ran the full analysis.
    pub cache_misses: usize,
    /// Verdicts replayed from the checkpoint journal (resumed runs).
    pub journal_hits: usize,
    /// Clusters skipped by a cooperative stop (no verdict recorded).
    pub skipped: usize,
    /// How the run ended: `"complete"` or `"stopped"` (resumable).
    pub outcome: String,
    /// Verdicts produced by a recovery rung above baseline.
    pub degraded: usize,
    /// Failed-job records.
    pub errors: usize,
    /// Work-stealing events.
    pub steals: u64,
    /// Wall-clock time of the run, milliseconds.
    pub wall_ms: f64,
    /// Summed pruning time across workers, milliseconds.
    pub prune_ms: f64,
    /// Summed glitch-analysis time across workers, milliseconds.
    pub analysis_ms: f64,
    /// Summed receiver-check time across workers, milliseconds.
    pub receiver_ms: f64,
    /// Summed time inside failed recovery-ladder attempts, milliseconds —
    /// the cost of recovery itself, attributable thanks to per-attempt
    /// durations.
    pub recovery_ms: f64,
    /// Peak live bytes during the process (0 when allocation tracking is
    /// off).
    pub peak_alloc_bytes: u64,
    /// Allocations recorded (0 when tracking is off).
    pub allocs: u64,
}

impl RunRecord {
    /// Render as one JSONL line (no trailing newline). Fingerprints are
    /// hex strings so they survive JSON's f64 numbers unscathed.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"schema\":{SCHEMA},\"config_fingerprint\":{},\"chip_fingerprint\":{},\
             \"victims\":{},\"workers\":{},\"host_parallelism\":{},\
             \"cache_hits\":{},\"cache_misses\":{},\"journal_hits\":{},\"skipped\":{},\
             \"outcome\":{},\"degraded\":{},\"errors\":{},\
             \"steals\":{},\"wall_ms\":{},\"prune_ms\":{},\"analysis_ms\":{},\
             \"receiver_ms\":{},\"recovery_ms\":{},\"peak_alloc_bytes\":{},\"allocs\":{}}}",
            str_lit(&format!("{:016x}", self.config_fingerprint)),
            str_lit(&format!("{:016x}", self.chip_fingerprint)),
            self.victims,
            self.workers,
            self.host_parallelism,
            self.cache_hits,
            self.cache_misses,
            self.journal_hits,
            self.skipped,
            str_lit(&self.outcome),
            self.degraded,
            self.errors,
            self.steals,
            f64_lit(self.wall_ms),
            f64_lit(self.prune_ms),
            f64_lit(self.analysis_ms),
            f64_lit(self.receiver_ms),
            f64_lit(self.recovery_ms),
            self.peak_alloc_bytes,
            self.allocs,
        )
    }

    /// Parse one ledger line back into a record. Returns `None` for
    /// malformed lines or unknown schema versions — a ledger reader must
    /// skip what it cannot understand, never fail the run.
    pub fn parse(line: &str) -> Option<RunRecord> {
        let v = json::parse(line.trim()).ok()?;
        let schema = v.get("schema")?.as_u64()?;
        if schema == 0 || schema > SCHEMA {
            return None;
        }
        let hex =
            |key: &str| -> Option<u64> { u64::from_str_radix(v.get(key)?.as_str()?, 16).ok() };
        let uint = |key: &str| v.get(key).and_then(Value::as_u64);
        let ms = |key: &str| v.get(key).and_then(Value::as_f64);
        Some(RunRecord {
            config_fingerprint: hex("config_fingerprint")?,
            chip_fingerprint: hex("chip_fingerprint")?,
            victims: uint("victims")? as usize,
            workers: uint("workers")? as usize,
            host_parallelism: uint("host_parallelism")? as usize,
            cache_hits: uint("cache_hits")? as usize,
            cache_misses: uint("cache_misses")? as usize,
            // Durability fields arrived in schema 2; default them for v1.
            journal_hits: uint("journal_hits").unwrap_or(0) as usize,
            skipped: uint("skipped").unwrap_or(0) as usize,
            outcome: v.get("outcome").and_then(Value::as_str).unwrap_or("complete").to_owned(),
            degraded: uint("degraded")? as usize,
            errors: uint("errors")? as usize,
            steals: uint("steals")?,
            wall_ms: ms("wall_ms")?,
            prune_ms: ms("prune_ms")?,
            analysis_ms: ms("analysis_ms")?,
            receiver_ms: ms("receiver_ms")?,
            recovery_ms: ms("recovery_ms")?,
            peak_alloc_bytes: uint("peak_alloc_bytes")?,
            allocs: uint("allocs")?,
        })
    }

    /// Append this record as one line to the ledger at `path`, creating
    /// the file if needed.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures (callers treat the ledger as best-effort).
    pub fn append(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        writeln!(f, "{}", self.to_json())
    }
}

/// Read every parseable record from a ledger file. Malformed or
/// foreign-schema lines are skipped, not errors.
pub fn read_all(path: &Path) -> Vec<RunRecord> {
    scan(path).0
}

/// Like [`read_all`], but also count the lines that could not be parsed —
/// a non-zero count usually means the final line was torn by a crash
/// mid-append (the journal/ledger recovery path) or the file was written
/// by a newer schema. Blank lines are ignored, not counted.
pub fn scan(path: &Path) -> (Vec<RunRecord>, usize) {
    let Ok(text) = std::fs::read_to_string(path) else {
        return (Vec::new(), 0);
    };
    let mut records = Vec::new();
    let mut skipped = 0usize;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match RunRecord::parse(line) {
            Some(rec) => records.push(rec),
            None => skipped += 1,
        }
    }
    (records, skipped)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunRecord {
        RunRecord {
            config_fingerprint: 0xdead_beef_0123_4567,
            chip_fingerprint: 0x0bad_cafe_89ab_cdef,
            victims: 42,
            workers: 4,
            host_parallelism: 8,
            cache_hits: 30,
            cache_misses: 12,
            journal_hits: 5,
            skipped: 1,
            outcome: "stopped".to_owned(),
            degraded: 2,
            errors: 1,
            steals: 17,
            wall_ms: 123.5,
            prune_ms: 10.25,
            analysis_ms: 88.0,
            receiver_ms: 4.75,
            recovery_ms: 9.125,
            peak_alloc_bytes: 1_234_567,
            allocs: 98_765,
        }
    }

    #[test]
    fn record_round_trips_through_parse() {
        let rec = sample();
        let line = rec.to_json();
        assert!(!line.contains('\n'), "a record is one JSONL line");
        assert_eq!(RunRecord::parse(&line), Some(rec));
    }

    #[test]
    fn unknown_schema_and_garbage_are_skipped() {
        assert_eq!(RunRecord::parse("not json"), None);
        assert_eq!(RunRecord::parse("{\"schema\":999}"), None);
        let truncated = "{\"schema\":1,\"victims\":3}";
        assert_eq!(RunRecord::parse(truncated), None);
    }

    #[test]
    fn append_accumulates_lines() {
        let dir = std::env::temp_dir().join("pcv-obs-ledger-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ledger.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut rec = sample();
        rec.append(&path).unwrap();
        rec.victims = 43;
        rec.append(&path).unwrap();
        let all = read_all(&path);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].victims, 42);
        assert_eq!(all[1].victims, 43);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn read_all_skips_bad_lines() {
        let dir = std::env::temp_dir().join("pcv-obs-ledger-mixed");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ledger.jsonl");
        let mut text = String::from("garbage line\n");
        text.push_str(&sample().to_json());
        text.push('\n');
        std::fs::write(&path, text).unwrap();
        assert_eq!(read_all(&path).len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn schema_v1_lines_parse_with_defaulted_durability_fields() {
        // A pre-durability (schema 1) record, verbatim from an old ledger.
        let v1 = "{\"schema\":1,\"config_fingerprint\":\"00000000000000aa\",\
                  \"chip_fingerprint\":\"00000000000000bb\",\"victims\":3,\"workers\":2,\
                  \"host_parallelism\":4,\"cache_hits\":1,\"cache_misses\":2,\"degraded\":0,\
                  \"errors\":0,\"steals\":5,\"wall_ms\":1.5,\"prune_ms\":0.5,\
                  \"analysis_ms\":0.75,\"receiver_ms\":0.25,\"recovery_ms\":0,\
                  \"peak_alloc_bytes\":0,\"allocs\":0}";
        let rec = RunRecord::parse(v1).expect("v1 line parses");
        assert_eq!(rec.journal_hits, 0);
        assert_eq!(rec.skipped, 0);
        assert_eq!(rec.outcome, "complete");
        assert_eq!(rec.victims, 3);
    }

    #[test]
    fn scan_counts_a_torn_final_line() {
        let dir = std::env::temp_dir().join("pcv-obs-ledger-torn");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ledger.jsonl");
        let full = sample().to_json();
        // Simulate a crash mid-append: the last record is cut short.
        let torn = &full[..full.len() / 2];
        std::fs::write(&path, format!("{full}\n{torn}")).unwrap();
        let (records, skipped) = scan(&path);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0], sample());
        assert_eq!(skipped, 1);
        // read_all sees the same surviving records.
        assert_eq!(read_all(&path).len(), 1);
        let _ = std::fs::remove_file(&path);
    }
}
