//! Memory telemetry: an instrumented global allocator and its snapshot
//! API.
//!
//! [`TrackingAlloc`] wraps the system allocator and, when the
//! `track-alloc` feature is on, maintains process-wide counters (current
//! and peak live bytes, allocation/deallocation counts, cumulative bytes)
//! with relaxed atomics plus per-thread cumulative counters used by the
//! [`pcv_trace`] span probe. With the feature off every method forwards
//! straight to the system allocator, the counters do not exist, and every
//! accessor in [`mem`] collapses to a constant — zero overhead, no
//! tracking symbols in the binary.
//!
//! Install it in a binary that wants telemetry:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: pcv_obs::TrackingAlloc = pcv_obs::TrackingAlloc::system();
//! ```

use std::alloc::{GlobalAlloc, Layout, System};

/// A point-in-time view of the process's tracked allocation state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemSnapshot {
    /// Live (allocated minus freed) bytes right now.
    pub current_bytes: u64,
    /// High-water mark of live bytes since process start (or the last
    /// [`mem::reset_peak`]).
    pub peak_bytes: u64,
    /// Allocations performed.
    pub allocs: u64,
    /// Deallocations performed.
    pub deallocs: u64,
    /// Cumulative bytes ever allocated (monotonic).
    pub total_bytes: u64,
}

/// The instrumented allocator. A unit struct: all counters are
/// process-global, so any number of references observe the same state.
#[derive(Debug, Clone, Copy, Default)]
pub struct TrackingAlloc;

impl TrackingAlloc {
    /// The allocator value to install as `#[global_allocator]`.
    pub const fn system() -> TrackingAlloc {
        TrackingAlloc
    }
}

#[cfg(feature = "track-alloc")]
mod imp {
    use std::cell::Cell;
    use std::sync::atomic::{AtomicU64, Ordering};

    pub(super) static CURRENT: AtomicU64 = AtomicU64::new(0);
    pub(super) static PEAK: AtomicU64 = AtomicU64::new(0);
    pub(super) static ALLOCS: AtomicU64 = AtomicU64::new(0);
    pub(super) static DEALLOCS: AtomicU64 = AtomicU64::new(0);
    pub(super) static TOTAL: AtomicU64 = AtomicU64::new(0);

    thread_local! {
        // Cumulative per-thread counters for span attribution. `Cell<u64>`
        // has no destructor, so first access never allocates — safe to
        // touch from inside the allocator itself.
        pub(super) static TL_BYTES: Cell<u64> = const { Cell::new(0) };
        pub(super) static TL_ALLOCS: Cell<u64> = const { Cell::new(0) };
    }

    #[inline]
    pub(super) fn on_alloc(size: usize) {
        let size = size as u64;
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        TOTAL.fetch_add(size, Ordering::Relaxed);
        let live = CURRENT.fetch_add(size, Ordering::Relaxed) + size;
        PEAK.fetch_max(live, Ordering::Relaxed);
        let _ = TL_BYTES.try_with(|c| c.set(c.get() + size));
        let _ = TL_ALLOCS.try_with(|c| c.set(c.get() + 1));
    }

    #[inline]
    pub(super) fn on_dealloc(size: usize) {
        DEALLOCS.fetch_add(1, Ordering::Relaxed);
        CURRENT.fetch_sub(size as u64, Ordering::Relaxed);
    }
}

#[cfg(feature = "track-alloc")]
// SAFETY: every method delegates to `System` for the actual memory
// operations; the bookkeeping around them only touches atomics and
// destructor-free thread-locals, so the allocator contract is `System`'s.
unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            imp::on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        imp::on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            imp::on_dealloc(layout.size());
            imp::on_alloc(new_size);
        }
        p
    }
}

#[cfg(not(feature = "track-alloc"))]
// SAFETY: a pure pass-through to `System`.
unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Snapshot accessors over the tracked allocation state.
pub mod mem {
    use super::MemSnapshot;

    /// `true` when allocation tracking is compiled in **and** at least one
    /// allocation has been recorded (i.e. [`super::TrackingAlloc`] is
    /// actually installed as the global allocator, or exercised directly).
    #[cfg(feature = "track-alloc")]
    pub fn active() -> bool {
        use std::sync::atomic::Ordering;
        super::imp::ALLOCS.load(Ordering::Relaxed) > 0
    }

    /// Always `false`: tracking is not compiled in.
    #[cfg(not(feature = "track-alloc"))]
    #[inline]
    pub fn active() -> bool {
        false
    }

    /// The current tracked state, or `None` when tracking is compiled out
    /// or no allocation has been recorded yet.
    #[cfg(feature = "track-alloc")]
    pub fn snapshot() -> Option<MemSnapshot> {
        use std::sync::atomic::Ordering;
        if !active() {
            return None;
        }
        Some(MemSnapshot {
            current_bytes: super::imp::CURRENT.load(Ordering::Relaxed),
            peak_bytes: super::imp::PEAK.load(Ordering::Relaxed),
            allocs: super::imp::ALLOCS.load(Ordering::Relaxed),
            deallocs: super::imp::DEALLOCS.load(Ordering::Relaxed),
            total_bytes: super::imp::TOTAL.load(Ordering::Relaxed),
        })
    }

    /// Always `None`: tracking is not compiled in.
    #[cfg(not(feature = "track-alloc"))]
    #[inline]
    pub fn snapshot() -> Option<MemSnapshot> {
        None
    }

    /// Re-arm the peak watermark to the current live size, so the next
    /// [`snapshot`] reports the peak *since this call*. Benchmark
    /// harnesses call this between repetitions.
    #[cfg(feature = "track-alloc")]
    pub fn reset_peak() {
        use std::sync::atomic::Ordering;
        let live = super::imp::CURRENT.load(Ordering::Relaxed);
        super::imp::PEAK.store(live, Ordering::Relaxed);
    }

    /// No-op: tracking is not compiled in.
    #[cfg(not(feature = "track-alloc"))]
    #[inline]
    pub fn reset_peak() {}

    /// This thread's cumulative `(bytes_allocated, allocations)` — the
    /// monotonic pair the [`pcv_trace`] span probe differences to charge
    /// allocations to pipeline stages. `(0, 0)` when tracking is off.
    #[cfg(feature = "track-alloc")]
    pub fn thread_totals() -> (u64, u64) {
        let bytes = super::imp::TL_BYTES.try_with(std::cell::Cell::get).unwrap_or(0);
        let allocs = super::imp::TL_ALLOCS.try_with(std::cell::Cell::get).unwrap_or(0);
        (bytes, allocs)
    }

    /// Always `(0, 0)`: tracking is not compiled in.
    #[cfg(not(feature = "track-alloc"))]
    #[inline]
    pub fn thread_totals() -> (u64, u64) {
        (0, 0)
    }

    /// Register [`thread_totals`] as [`pcv_trace`]'s memory probe, so
    /// every span records the allocation delta of its scope. Idempotent;
    /// a no-op when tracking is compiled out (spans then carry zeros).
    pub fn install_trace_probe() {
        if active() {
            pcv_trace::mem::set_probe(thread_totals);
        }
    }
}

#[cfg(test)]
mod tests {
    // With the feature off, every accessor must collapse to its constant
    // form — the "disabled path" contract. (These run under
    // `cargo test -p pcv-obs`; workspace builds unify the feature on.)
    #[cfg(not(feature = "track-alloc"))]
    mod disabled {
        use super::super::*;

        #[test]
        fn snapshot_is_none_and_nothing_counts() {
            assert!(!mem::active());
            assert!(mem::snapshot().is_none());
            assert_eq!(mem::thread_totals(), (0, 0));
            // Exercising the allocator directly still records nothing.
            let a = TrackingAlloc::system();
            let layout = Layout::from_size_align(64, 8).unwrap();
            unsafe {
                let p = a.alloc(layout);
                assert!(!p.is_null());
                a.dealloc(p, layout);
            }
            assert!(mem::snapshot().is_none());
            mem::reset_peak(); // must be a no-op, not a panic
        }
    }

    #[cfg(feature = "track-alloc")]
    mod enabled {
        use super::super::*;

        /// Drive the allocator directly (no global install needed) and
        /// check the counters respond.
        #[test]
        fn counters_track_alloc_and_free() {
            let a = TrackingAlloc::system();
            let layout = Layout::from_size_align(4096, 8).unwrap();
            let before = mem::snapshot().unwrap_or_default();
            unsafe {
                let p = a.alloc(layout);
                assert!(!p.is_null());
                let during = mem::snapshot().expect("tracking active after an alloc");
                assert!(during.allocs > before.allocs);
                assert!(during.total_bytes >= before.total_bytes + 4096);
                assert!(during.peak_bytes >= during.current_bytes.min(4096));
                a.dealloc(p, layout);
            }
            let after = mem::snapshot().unwrap();
            assert!(after.deallocs > before.deallocs);
        }

        /// Peak is monotone over a burst of allocations and never below
        /// current — even while other test threads allocate concurrently.
        #[test]
        fn peak_is_monotone_and_dominates_current() {
            let a = TrackingAlloc::system();
            let layout = Layout::from_size_align(1 << 16, 8).unwrap();
            let mut last_peak = 0u64;
            let mut held = Vec::new();
            for _ in 0..8 {
                unsafe { held.push(a.alloc(layout)) };
                let s = mem::snapshot().unwrap();
                assert!(s.peak_bytes >= last_peak, "peak regressed");
                assert!(s.peak_bytes >= s.current_bytes, "peak below current");
                last_peak = s.peak_bytes;
            }
            for p in held {
                unsafe { a.dealloc(p, layout) };
            }
        }

        /// Concurrent workers: global counts absorb every thread's
        /// traffic; per-thread totals see exactly their own.
        #[test]
        fn snapshots_stay_consistent_under_concurrency() {
            let before = {
                // Prime the counters so `active()` holds even if this test
                // runs first.
                let a = TrackingAlloc::system();
                let layout = Layout::from_size_align(8, 8).unwrap();
                unsafe {
                    let p = a.alloc(layout);
                    a.dealloc(p, layout);
                }
                mem::snapshot().unwrap()
            };
            const THREADS: usize = 4;
            const EACH: usize = 200;
            const SIZE: usize = 1024;
            std::thread::scope(|scope| {
                for _ in 0..THREADS {
                    scope.spawn(|| {
                        let a = TrackingAlloc::system();
                        let layout = Layout::from_size_align(SIZE, 8).unwrap();
                        let (tl_bytes0, tl_allocs0) = mem::thread_totals();
                        for _ in 0..EACH {
                            unsafe {
                                let p = a.alloc(layout);
                                assert!(!p.is_null());
                                a.dealloc(p, layout);
                            }
                        }
                        let (tl_bytes1, tl_allocs1) = mem::thread_totals();
                        assert!(tl_allocs1 >= tl_allocs0 + EACH as u64);
                        assert!(tl_bytes1 >= tl_bytes0 + (EACH * SIZE) as u64);
                    });
                }
            });
            let after = mem::snapshot().unwrap();
            let traffic = (THREADS * EACH) as u64;
            assert!(after.allocs >= before.allocs + traffic);
            assert!(after.deallocs >= before.deallocs + traffic);
            assert!(after.total_bytes >= before.total_bytes + traffic * SIZE as u64);
            assert!(after.peak_bytes >= after.current_bytes);
        }
    }
}
