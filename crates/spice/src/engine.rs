//! DC and transient analysis engine.
//!
//! The solver follows classic SPICE structure: Newton–Raphson on the
//! companion-linearized MNA system, `gmin` stepping for hard DC points,
//! trapezoidal integration with backward-Euler startup after discontinuities,
//! and breakpoint alignment so source corners are never stepped over.

use crate::mna::{node_voltage, MnaLayout, Stamper};
use crate::mos::eval_mos;
use pcv_netlist::termination::Termination;
use pcv_netlist::Waveform;
use pcv_netlist::{Circuit, Element, NodeId};
use pcv_sparse::SparseLu;
use std::fmt;

/// Errors produced by the simulator.
#[derive(Debug)]
pub enum SimError {
    /// The linear solver failed (singular Jacobian even with `gmin`).
    Solver(pcv_sparse::Error),
    /// Newton iteration failed to converge.
    NoConvergence {
        /// Simulation time at which convergence failed (`0.0` for DC).
        t: f64,
    },
    /// The timestep shrank below `min_step` without convergence.
    StepTooSmall {
        /// Simulation time at which the step collapsed.
        t: f64,
    },
    /// A probe was requested for a node that was not recorded.
    UnknownProbe {
        /// The offending node.
        node: NodeId,
    },
    /// An accepted solution vector contained NaN or infinite voltages;
    /// surfaced as a typed error so non-finite values fail fast instead of
    /// poisoning recorded waveforms.
    NonFinite {
        /// Simulation time of the poisoned solution (`0.0` for DC).
        t: f64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Solver(e) => write!(f, "linear solver failed: {e}"),
            SimError::NoConvergence { t } => {
                write!(f, "newton iteration failed to converge at t = {t:e}")
            }
            SimError::StepTooSmall { t } => {
                write!(f, "timestep underflow at t = {t:e}")
            }
            SimError::UnknownProbe { node } => {
                write!(f, "node {node} was not probed")
            }
            SimError::NonFinite { t } => {
                write!(f, "solution produced a non-finite (NaN or infinite) voltage at t = {t:e}")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Solver(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pcv_sparse::Error> for SimError {
    fn from(e: pcv_sparse::Error) -> Self {
        SimError::Solver(e)
    }
}

/// Simulator tuning knobs. The defaults suit 0.25 µm digital circuits on
/// nanosecond timescales.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Minimum conductance from every node to ground (keeps floating nodes
    /// and cutoff devices solvable).
    pub gmin: f64,
    /// Absolute voltage convergence tolerance.
    pub vtol: f64,
    /// Relative convergence tolerance.
    pub reltol: f64,
    /// Newton iteration budget per solve.
    pub max_newton: usize,
    /// Largest allowed voltage change per Newton iteration (damping).
    pub damping: f64,
    /// Maximum timestep as a fraction of the simulation span.
    pub max_step_fraction: f64,
    /// Smallest allowed timestep in seconds.
    pub min_step: f64,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            gmin: 1e-12,
            vtol: 1e-6,
            reltol: 1e-4,
            max_newton: 100,
            damping: 0.4,
            max_step_fraction: 1.0 / 1000.0,
            min_step: 1e-18,
        }
    }
}

/// Integration method for one step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Method {
    BackwardEuler,
    Trapezoidal,
}

/// A linear capacitor instance flattened out of the circuit (explicit caps,
/// MOSFET parasitics and termination caps all end up here).
#[derive(Debug, Clone, Copy)]
struct CapInst {
    a: NodeId,
    b: NodeId,
    farads: f64,
}

/// Per-capacitor integration state.
#[derive(Debug, Clone, Default)]
struct CapState {
    v_prev: Vec<f64>,
    i_prev: Vec<f64>,
}

/// Results of a transient analysis: sampled waveforms at the probed nodes.
#[derive(Debug, Clone)]
pub struct TranResult {
    times: Vec<f64>,
    probes: Vec<NodeId>,
    /// `data[p][k]` = voltage of probe `p` at `times[k]`.
    data: Vec<Vec<f64>>,
    /// Accepted timesteps.
    pub steps: usize,
    /// Total Newton iterations across the run (a CPU-cost proxy).
    pub newton_iters: usize,
}

impl TranResult {
    /// Sample times.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// The probed nodes.
    pub fn probes(&self) -> &[NodeId] {
        &self.probes
    }

    /// Waveform of a probed node.
    ///
    /// # Panics
    ///
    /// Panics if the node was not probed; use [`TranResult::try_waveform`]
    /// for a fallible lookup.
    pub fn waveform(&self, node: NodeId) -> Waveform {
        self.try_waveform(node).expect("node was not probed")
    }

    /// Waveform of a probed node, or an error.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownProbe`] when the node was not recorded.
    pub fn try_waveform(&self, node: NodeId) -> Result<Waveform, SimError> {
        let idx =
            self.probes.iter().position(|&p| p == node).ok_or(SimError::UnknownProbe { node })?;
        Ok(Waveform::from_samples(self.times.clone(), self.data[idx].clone()))
    }
}

/// The simulator: a circuit plus attached nonlinear terminations.
///
/// See the crate-level docs for an end-to-end example.
#[derive(Debug)]
pub struct Simulator<'a> {
    ckt: &'a Circuit,
    layout: MnaLayout,
    terminations: Vec<(NodeId, &'a dyn Termination)>,
    /// Fill-reducing ordering of the MNA pattern, computed from the first
    /// assembled Jacobian and reused for every subsequent factorization
    /// (extracted RC networks in natural order suffer ~10x LU fill).
    ordering: std::cell::OnceCell<Vec<usize>>,
}

impl<'a> Simulator<'a> {
    /// Create a simulator for a circuit.
    pub fn new(ckt: &'a Circuit) -> Self {
        Simulator {
            ckt,
            layout: MnaLayout::new(ckt),
            terminations: Vec::new(),
            ordering: std::cell::OnceCell::new(),
        }
    }

    /// Attach a nonlinear termination at a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is ground.
    pub fn add_termination(&mut self, node: NodeId, term: &'a dyn Termination) -> &mut Self {
        assert!(!node.is_ground(), "terminations attach to signal nodes");
        self.terminations.push((node, term));
        self
    }

    /// The MNA layout (size, branch rows).
    pub fn layout(&self) -> &MnaLayout {
        &self.layout
    }

    fn collect_caps(&self) -> Vec<CapInst> {
        let mut caps = Vec::new();
        for e in self.ckt.elements() {
            match e {
                Element::Capacitor { a, b, farads } => {
                    caps.push(CapInst { a: *a, b: *b, farads: *farads });
                }
                Element::Mosfet { d, g, s, params } => {
                    // Simple charge model: half the gate cap to source and
                    // drain each, junction caps to ground.
                    let cg2 = 0.5 * params.gate_cap();
                    if cg2 > 0.0 {
                        caps.push(CapInst { a: *g, b: *s, farads: cg2 });
                        caps.push(CapInst { a: *g, b: *d, farads: cg2 });
                    }
                    let cj = params.junction_cap();
                    if cj > 0.0 {
                        caps.push(CapInst { a: *d, b: NodeId::GROUND, farads: cj });
                        caps.push(CapInst { a: *s, b: NodeId::GROUND, farads: cj });
                    }
                }
                _ => {}
            }
        }
        for (node, term) in &self.terminations {
            let c = term.capacitance();
            if c > 0.0 {
                caps.push(CapInst { a: *node, b: NodeId::GROUND, farads: c });
            }
        }
        caps
    }

    /// Stamp every element at solution `x`, time `t`. `dynamic` carries the
    /// capacitor companion context for transient steps; `None` means DC
    /// (capacitors open).
    fn stamp(
        &self,
        st: &mut Stamper,
        x: &[f64],
        t: f64,
        gmin: f64,
        dynamic: Option<(&[CapInst], &CapState, f64, Method)>,
        dc_sources: bool,
    ) {
        let n = self.layout.num_nodes();
        for i in 0..n {
            st.diagonal(i, gmin);
        }
        let mut vsrc_iter = self.layout.vsrc_rows().iter();
        for e in self.ckt.elements() {
            match e {
                Element::Resistor { a, b, ohms } => st.conductance(*a, *b, 1.0 / ohms),
                Element::Capacitor { .. } => {} // handled via the caps list
                Element::Vsrc { pos, neg, wave } => {
                    let (_, row) = *vsrc_iter.next().expect("layout matches circuit");
                    let v = if dc_sources { wave.dc_value() } else { wave.value_at(t) };
                    st.vsrc(row, *pos, *neg, v);
                }
                Element::Isrc { pos, neg, wave } => {
                    let i = if dc_sources { wave.dc_value() } else { wave.value_at(t) };
                    st.current_into(*pos, -i);
                    st.current_into(*neg, i);
                }
                Element::Mosfet { d, g, s, params } => {
                    let vd = node_voltage(x, *d);
                    let vg = node_voltage(x, *g);
                    let vs = node_voltage(x, *s);
                    let m = eval_mos(params, vd, vg, vs);
                    st.jacobian(*d, *d, m.g_d);
                    st.jacobian(*d, *g, m.g_g);
                    st.jacobian(*d, *s, m.g_s);
                    st.jacobian(*s, *d, -m.g_d);
                    st.jacobian(*s, *g, -m.g_g);
                    st.jacobian(*s, *s, -m.g_s);
                    let ieq = m.ids - m.g_d * vd - m.g_g * vg - m.g_s * vs;
                    st.current_into(*d, -ieq);
                    st.current_into(*s, ieq);
                }
            }
        }
        for (node, term) in &self.terminations {
            let v = node_voltage(x, *node);
            let (i0, g) = term.eval(t, v);
            st.jacobian(*node, *node, g);
            st.current_into(*node, -(i0 - g * v));
        }
        if let Some((caps, state, h, method)) = dynamic {
            for (k, cap) in caps.iter().enumerate() {
                let (geq, ieq) = match method {
                    Method::BackwardEuler => {
                        let geq = cap.farads / h;
                        (geq, geq * state.v_prev[k])
                    }
                    Method::Trapezoidal => {
                        let geq = 2.0 * cap.farads / h;
                        (geq, geq * state.v_prev[k] + state.i_prev[k])
                    }
                };
                st.conductance(cap.a, cap.b, geq);
                st.current_into(cap.a, ieq);
                st.current_into(cap.b, -ieq);
            }
        }
    }

    /// One Newton solve. Returns the solution and the iteration count.
    #[allow(clippy::too_many_arguments)]
    fn solve_point(
        &self,
        x0: &[f64],
        t: f64,
        gmin: f64,
        dynamic: Option<(&[CapInst], &CapState, f64, Method)>,
        dc_sources: bool,
        opts: &SimOptions,
    ) -> Result<(Vec<f64>, usize), SimError> {
        let n = self.layout.num_nodes();
        let size = self.layout.size();
        let mut x = x0.to_vec();
        for iter in 0..opts.max_newton {
            let mut st = Stamper::new(size);
            self.stamp(&mut st, &x, t, gmin, dynamic, dc_sources);
            let (j, rhs) = st.finish();
            let perm = self.ordering.get_or_init(|| pcv_sparse::order::rcm(&j));
            let x_new = if perm.len() == j.nrows() {
                let jp = j.permute_sym(perm);
                let bp: Vec<f64> = perm.iter().map(|&old| rhs[old]).collect();
                let xp = SparseLu::factor(&jp, 1e-3)?.solve(&bp);
                let mut un = vec![0.0; size];
                for (new, &old) in perm.iter().enumerate() {
                    un[old] = xp[new];
                }
                un
            } else {
                SparseLu::factor(&j, 1e-3)?.solve(&rhs)
            };
            // Damped update on node voltages; branch currents move freely.
            let mut converged = true;
            let mut next = x.clone();
            for i in 0..size {
                let delta = x_new[i] - x[i];
                if i < n {
                    if delta.abs() > opts.vtol + opts.reltol * x[i].abs() {
                        converged = false;
                    }
                    next[i] = x[i] + delta.clamp(-opts.damping, opts.damping);
                } else {
                    next[i] = x_new[i];
                }
            }
            x = next;
            if converged {
                return Ok((x, iter + 1));
            }
        }
        Err(SimError::NoConvergence { t })
    }

    /// Solve the DC operating point (sources at their `t = 0⁻` values).
    ///
    /// Falls back to `gmin` stepping when the direct Newton solve fails.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoConvergence`] or [`SimError::Solver`] when even
    /// stepped solves fail.
    pub fn dc(&self, opts: &SimOptions) -> Result<Vec<f64>, SimError> {
        let x0 = vec![0.0; self.layout.size()];
        match self.solve_point(&x0, 0.0, opts.gmin, None, true, opts) {
            Ok((x, _)) => Ok(x),
            Err(_) => {
                // gmin stepping: solve a heavily damped system first and
                // track the solution as gmin relaxes.
                let mut x = x0;
                let mut g = 1e-2;
                while g > opts.gmin * 1.001 {
                    if let Ok((xs, _)) = self.solve_point(&x, 0.0, g, None, true, opts) {
                        x = xs;
                    }
                    g *= 0.1;
                }
                let (x, _) = self.solve_point(&x, 0.0, opts.gmin, None, true, opts)?;
                Ok(x)
            }
        }
    }

    /// Run a transient analysis to `tstop`, recording every non-ground node.
    ///
    /// # Errors
    ///
    /// Propagates DC failures and returns [`SimError::StepTooSmall`] when the
    /// integrator cannot find a convergent step.
    pub fn transient(&self, tstop: f64, opts: &SimOptions) -> Result<TranResult, SimError> {
        let probes: Vec<NodeId> = (0..self.layout.num_nodes()).map(NodeId::from_index).collect();
        self.transient_probed(tstop, opts, &probes)
    }

    /// Run a transient analysis recording only the given nodes (memory-light
    /// for chip-scale runs).
    ///
    /// # Errors
    ///
    /// Propagates DC failures and returns [`SimError::StepTooSmall`] when the
    /// integrator cannot find a convergent step.
    ///
    /// # Panics
    ///
    /// Panics if `tstop <= 0` or a probe is ground.
    pub fn transient_probed(
        &self,
        tstop: f64,
        opts: &SimOptions,
        probes: &[NodeId],
    ) -> Result<TranResult, SimError> {
        assert!(tstop > 0.0, "tstop must be positive");
        assert!(probes.iter().all(|p| !p.is_ground()), "cannot probe ground");
        let caps = self.collect_caps();
        let mut x = self.dc(opts)?;
        if x.iter().any(|v| !v.is_finite()) {
            return Err(SimError::NonFinite { t: 0.0 });
        }
        let mut state = CapState {
            v_prev: caps.iter().map(|c| node_voltage(&x, c.a) - node_voltage(&x, c.b)).collect(),
            i_prev: vec![0.0; caps.len()],
        };

        // Breakpoints from source waveforms and termination stimuli.
        let mut bps: Vec<f64> = Vec::new();
        for e in self.ckt.elements() {
            if let Element::Vsrc { wave, .. } | Element::Isrc { wave, .. } = e {
                bps.extend(wave.breakpoints());
            }
        }
        for (_, term) in &self.terminations {
            bps.extend(term.breakpoints());
        }
        bps.retain(|&b| b > 0.0 && b < tstop);
        bps.sort_by(|a, b| a.partial_cmp(b).expect("finite breakpoints"));
        bps.dedup_by(|a, b| (*a - *b).abs() < 1e-18);
        let mut bp_idx = 0;

        let hmax = tstop * opts.max_step_fraction;
        let h_init = hmax / 10.0;
        let mut h = h_init;
        let mut t = 0.0;
        let tiny = tstop * 1e-12;

        let mut result = TranResult {
            times: vec![0.0],
            probes: probes.to_vec(),
            data: probes.iter().map(|&p| vec![node_voltage(&x, p)]).collect(),
            steps: 0,
            newton_iters: 0,
        };
        // Start each run (and each post-breakpoint region) with BE to damp
        // the trapezoidal ringing a slope discontinuity would excite.
        let mut use_be = true;

        while t < tstop - tiny {
            let next_bp = bps.get(bp_idx).copied();
            let mut h_eff = h.min(hmax).min(tstop - t);
            if let Some(bp) = next_bp {
                if bp > t + tiny {
                    h_eff = h_eff.min(bp - t);
                }
            }
            let method = if use_be { Method::BackwardEuler } else { Method::Trapezoidal };
            match self.solve_point(
                &x,
                t + h_eff,
                opts.gmin,
                Some((&caps, &state, h_eff, method)),
                false,
                opts,
            ) {
                Ok((x_new, iters)) => {
                    if x_new.iter().any(|v| !v.is_finite()) {
                        return Err(SimError::NonFinite { t: t + h_eff });
                    }
                    // Accept: update capacitor states.
                    for (k, cap) in caps.iter().enumerate() {
                        let v_new = node_voltage(&x_new, cap.a) - node_voltage(&x_new, cap.b);
                        let i_new = match method {
                            Method::BackwardEuler => cap.farads / h_eff * (v_new - state.v_prev[k]),
                            Method::Trapezoidal => {
                                2.0 * cap.farads / h_eff * (v_new - state.v_prev[k])
                                    - state.i_prev[k]
                            }
                        };
                        state.v_prev[k] = v_new;
                        state.i_prev[k] = i_new;
                    }
                    t += h_eff;
                    x = x_new;
                    result.times.push(t);
                    for (p, &probe) in probes.iter().enumerate() {
                        result.data[p].push(node_voltage(&x, probe));
                    }
                    result.steps += 1;
                    result.newton_iters += iters;
                    use_be = false;

                    // Crossed a breakpoint? Restart small with BE.
                    if let Some(bp) = next_bp {
                        if (t - bp).abs() <= tiny {
                            bp_idx += 1;
                            h = h_init;
                            use_be = true;
                            continue;
                        }
                    }
                    // Iteration-count step control.
                    if iters <= 3 {
                        h = (h * 1.5).min(hmax);
                    } else if iters >= 8 {
                        h *= 0.5;
                    }
                }
                Err(SimError::NoConvergence { .. }) | Err(SimError::Solver(_)) => {
                    h /= 4.0;
                    use_be = true;
                    if h < opts.min_step {
                        return Err(SimError::StepTooSmall { t });
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcv_netlist::termination::{ResistiveTermination, TheveninTermination};
    use pcv_netlist::{MosParams, SourceWave};

    const VDD: f64 = 2.5;

    #[test]
    fn dc_voltage_divider() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsrc(a, Circuit::GROUND, SourceWave::Dc(3.0));
        ckt.add_resistor(a, b, 1000.0);
        ckt.add_resistor(b, Circuit::GROUND, 2000.0);
        let x = Simulator::new(&ckt).dc(&SimOptions::default()).unwrap();
        assert!((node_voltage(&x, b) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn dc_inverter_transfer() {
        // A CMOS inverter: input low → output at VDD; input high → output 0.
        for (vin, expect) in [(0.0, VDD), (VDD, 0.0)] {
            let mut ckt = Circuit::new();
            let vdd = ckt.node("vdd");
            let inp = ckt.node("in");
            let out = ckt.node("out");
            ckt.add_vsrc(vdd, Circuit::GROUND, SourceWave::Dc(VDD));
            ckt.add_vsrc(inp, Circuit::GROUND, SourceWave::Dc(vin));
            ckt.add_mosfet(out, inp, Circuit::GROUND, MosParams::nmos_025(1e-6));
            ckt.add_mosfet(out, inp, vdd, MosParams::pmos_025(2.5e-6));
            let x = Simulator::new(&ckt).dc(&SimOptions::default()).unwrap();
            assert!(
                (node_voltage(&x, out) - expect).abs() < 0.01,
                "vin={vin}: vout={} expect={expect}",
                node_voltage(&x, out)
            );
        }
    }

    #[test]
    fn rc_step_response_matches_analytic() {
        let mut ckt = Circuit::new();
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.add_vsrc(inp, Circuit::GROUND, SourceWave::step(0.0, 1.0, 1e-9, 1e-13));
        ckt.add_resistor(inp, out, 1000.0);
        ckt.add_capacitor(out, Circuit::GROUND, 1e-12);
        let res = Simulator::new(&ckt).transient(11e-9, &SimOptions::default()).unwrap();
        let w = res.waveform(out);
        // v(t) = 1 - exp(-(t - 1n)/1n)
        for &tt in &[2e-9, 3e-9, 5e-9, 9e-9] {
            let analytic = 1.0 - (-(tt - 1e-9) / 1e-9_f64).exp();
            assert!(
                (w.value_at(tt) - analytic).abs() < 5e-3,
                "t={tt}: {} vs {}",
                w.value_at(tt),
                analytic
            );
        }
    }

    #[test]
    fn coupled_rc_charge_sharing() {
        // Two grounded-cap nodes joined by a coupling cap: a step on the
        // aggressor injects a glitch on the floating victim.
        let mut ckt = Circuit::new();
        let agg_in = ckt.node("agg_in");
        let agg = ckt.node("agg");
        let vic = ckt.node("vic");
        ckt.add_vsrc(agg_in, Circuit::GROUND, SourceWave::step(0.0, VDD, 1e-9, 0.1e-9));
        ckt.add_resistor(agg_in, agg, 200.0);
        ckt.add_capacitor(agg, Circuit::GROUND, 20e-15);
        ckt.add_capacitor(agg, vic, 30e-15); // coupling
        ckt.add_capacitor(vic, Circuit::GROUND, 30e-15);
        ckt.add_resistor(vic, Circuit::GROUND, 1000.0); // weak holder
        let res = Simulator::new(&ckt).transient(5e-9, &SimOptions::default()).unwrap();
        let w = res.waveform(vic);
        let (_, peak) = w.peak_deviation(0.0);
        assert!(peak > 0.1, "coupled glitch should be visible, got {peak}");
        assert!(peak < VDD * 0.6, "glitch bounded by divider, got {peak}");
        // Glitch decays back through the holding resistor.
        assert!(w.value_at(5e-9).abs() < 0.05);
    }

    #[test]
    fn inverter_transient_switches() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.add_vsrc(vdd, Circuit::GROUND, SourceWave::Dc(VDD));
        ckt.add_vsrc(inp, Circuit::GROUND, SourceWave::step(0.0, VDD, 0.5e-9, 0.1e-9));
        ckt.add_mosfet(out, inp, Circuit::GROUND, MosParams::nmos_025(2e-6));
        ckt.add_mosfet(out, inp, vdd, MosParams::pmos_025(5e-6));
        ckt.add_capacitor(out, Circuit::GROUND, 20e-15);
        let res = Simulator::new(&ckt).transient(4e-9, &SimOptions::default()).unwrap();
        let w = res.waveform(out);
        assert!((w.value_at(0.2e-9) - VDD).abs() < 0.02, "output starts high");
        assert!(w.value_at(4e-9).abs() < 0.02, "output ends low");
        let d = w.crossing(0.5 * VDD, false, 0.0).unwrap();
        assert!(d > 0.5e-9 && d < 2e-9, "plausible delay, got {d}");
    }

    #[test]
    fn termination_thevenin_drives_node() {
        // A node driven only by a Thevenin termination behaves like a
        // source behind a resistor.
        let mut ckt = Circuit::new();
        let n = ckt.node("n");
        ckt.add_capacitor(n, Circuit::GROUND, 1e-12);
        let term = TheveninTermination::new(1000.0, SourceWave::step(0.0, 1.0, 0.0, 1e-13));
        let mut sim = Simulator::new(&ckt);
        sim.add_termination(n, &term);
        let res = sim.transient(8e-9, &SimOptions::default()).unwrap();
        let w = res.waveform(n);
        assert!((w.value_at(8e-9) - 1.0).abs() < 0.01);
        // tau = 1 ns ⇒ at 1 ns: 63%.
        assert!((w.value_at(1e-9) - 0.632).abs() < 0.02);
    }

    #[test]
    fn resistive_termination_loads_divider() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsrc(a, Circuit::GROUND, SourceWave::Dc(2.0));
        ckt.add_resistor(a, b, 1000.0);
        let term = ResistiveTermination::new(1000.0);
        let mut sim = Simulator::new(&ckt);
        sim.add_termination(b, &term);
        let x = sim.dc(&SimOptions::default()).unwrap();
        assert!((node_voltage(&x, b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn probed_transient_limits_recording() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsrc(a, Circuit::GROUND, SourceWave::Dc(1.0));
        ckt.add_resistor(a, b, 100.0);
        ckt.add_capacitor(b, Circuit::GROUND, 1e-15);
        let res =
            Simulator::new(&ckt).transient_probed(1e-9, &SimOptions::default(), &[b]).unwrap();
        assert!(res.try_waveform(b).is_ok());
        assert!(matches!(res.try_waveform(a), Err(SimError::UnknownProbe { .. })));
    }

    #[test]
    fn floating_node_survives_via_gmin() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("float");
        ckt.add_vsrc(a, Circuit::GROUND, SourceWave::Dc(1.0));
        ckt.add_capacitor(a, b, 1e-15); // b floats except through gmin
        let x = Simulator::new(&ckt).dc(&SimOptions::default()).unwrap();
        assert!(node_voltage(&x, b).abs() < 1.0 + 1e-6);
    }

    #[test]
    fn breakpoints_are_not_stepped_over() {
        // A very narrow pulse must still be seen by the integrator.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_vsrc(
            a,
            Circuit::GROUND,
            SourceWave::Pulse {
                v0: 0.0,
                v1: 1.0,
                delay: 5e-9,
                rise: 1e-12,
                fall: 1e-12,
                width: 20e-12,
                period: f64::INFINITY,
            },
        );
        ckt.add_resistor(a, Circuit::GROUND, 1000.0);
        let res = Simulator::new(&ckt).transient(10e-9, &SimOptions::default()).unwrap();
        let w = res.waveform(a);
        let (_, peak) = w.peak_deviation(0.0);
        assert!((peak - 1.0).abs() < 1e-3, "pulse peak captured, got {peak}");
    }

    #[test]
    fn errors_display() {
        let e = SimError::NoConvergence { t: 1e-9 };
        assert!(e.to_string().contains("converge"));
        let e = SimError::StepTooSmall { t: 0.0 };
        assert!(e.to_string().contains("underflow"));
        let e = SimError::NonFinite { t: 2e-9 };
        assert!(e.to_string().contains("non-finite"));
        assert!(e.to_string().contains("2e-9"));
    }
}
