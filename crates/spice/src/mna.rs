//! Modified nodal analysis assembly.
//!
//! The unknown vector is `[node voltages | voltage-source branch currents]`.
//! A [`Stamper`] accumulates one Newton iteration's Jacobian and right-hand
//! side; element evaluation lives in the engine so the stamper stays a dumb,
//! easily tested accumulator.

use pcv_netlist::{Circuit, Element, NodeId};
use pcv_sparse::{Csc, Triplets};

/// Static layout of an MNA system for a circuit: node count, branch-current
/// rows for voltage sources, and total size.
#[derive(Debug, Clone)]
pub struct MnaLayout {
    n_nodes: usize,
    /// For each element index that is a `Vsrc`, its branch row.
    vsrc_rows: Vec<(usize, usize)>,
}

impl MnaLayout {
    /// Build the layout for a circuit.
    pub fn new(ckt: &Circuit) -> Self {
        let n_nodes = ckt.num_nodes();
        let mut vsrc_rows = Vec::new();
        let mut next = n_nodes;
        for (i, e) in ckt.elements().iter().enumerate() {
            if matches!(e, Element::Vsrc { .. }) {
                vsrc_rows.push((i, next));
                next += 1;
            }
        }
        MnaLayout { n_nodes, vsrc_rows }
    }

    /// Number of non-ground nodes.
    pub fn num_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Total unknown count (nodes plus branch currents).
    pub fn size(&self) -> usize {
        self.n_nodes + self.vsrc_rows.len()
    }

    /// Branch row of the `k`-th voltage source, as `(element_index, row)`.
    pub fn vsrc_rows(&self) -> &[(usize, usize)] {
        &self.vsrc_rows
    }
}

/// Accumulator for one linearized MNA system `J x = b`.
#[derive(Debug)]
pub struct Stamper {
    size: usize,
    triplets: Triplets,
    rhs: Vec<f64>,
}

impl Stamper {
    /// Create an empty system of the given size.
    pub fn new(size: usize) -> Self {
        Stamper { size, triplets: Triplets::new(size, size), rhs: vec![0.0; size] }
    }

    /// Total unknown count.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Stamp a conductance `g` between two nodes (either may be ground).
    pub fn conductance(&mut self, a: NodeId, b: NodeId, g: f64) {
        if let Some(i) = a.index_opt() {
            self.triplets.push(i, i, g);
            if let Some(j) = b.index_opt() {
                self.triplets.push(i, j, -g);
            }
        }
        if let Some(j) = b.index_opt() {
            self.triplets.push(j, j, g);
            if let Some(i) = a.index_opt() {
                self.triplets.push(j, i, -g);
            }
        }
    }

    /// Stamp a raw Jacobian entry: `d(KCL at row_node)/d(v[col_node])`.
    pub fn jacobian(&mut self, row: NodeId, col: NodeId, g: f64) {
        if let (Some(i), Some(j)) = (row.index_opt(), col.index_opt()) {
            self.triplets.push(i, j, g);
        }
    }

    /// Inject a current `i` *into* a node (adds to the RHS).
    pub fn current_into(&mut self, node: NodeId, i: f64) {
        if let Some(k) = node.index_opt() {
            self.rhs[k] += i;
        }
    }

    /// Stamp a voltage source `v(pos) - v(neg) = value` with branch row
    /// `row` (from [`MnaLayout::vsrc_rows`]).
    pub fn vsrc(&mut self, row: usize, pos: NodeId, neg: NodeId, value: f64) {
        if let Some(i) = pos.index_opt() {
            self.triplets.push(i, row, 1.0);
            self.triplets.push(row, i, 1.0);
        }
        if let Some(j) = neg.index_opt() {
            self.triplets.push(j, row, -1.0);
            self.triplets.push(row, j, -1.0);
        }
        self.rhs[row] += value;
    }

    /// Add `g` to a diagonal entry by raw row index (gmin, branch damping).
    pub fn diagonal(&mut self, row: usize, g: f64) {
        self.triplets.push(row, row, g);
    }

    /// Finish assembly: returns the sparse Jacobian and RHS.
    pub fn finish(self) -> (Csc, Vec<f64>) {
        (self.triplets.to_csc(), self.rhs)
    }
}

/// Voltage of a node under a solution vector (`0.0` for ground).
#[inline]
pub fn node_voltage(x: &[f64], node: NodeId) -> f64 {
    match node.index_opt() {
        Some(i) => x[i],
        None => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcv_netlist::SourceWave;
    use pcv_sparse::SparseLu;

    #[test]
    fn layout_assigns_branch_rows() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_resistor(a, b, 1.0);
        ckt.add_vsrc(a, Circuit::GROUND, SourceWave::Dc(1.0));
        ckt.add_vsrc(b, Circuit::GROUND, SourceWave::Dc(2.0));
        let layout = MnaLayout::new(&ckt);
        assert_eq!(layout.num_nodes(), 2);
        assert_eq!(layout.size(), 4);
        assert_eq!(layout.vsrc_rows(), &[(1, 2), (2, 3)]);
    }

    #[test]
    fn voltage_divider_solves() {
        // v1 --- R1=1k --- v2 --- R2=1k --- gnd, V(v1)=2.0
        let mut ckt = Circuit::new();
        let v1 = ckt.node("v1");
        let v2 = ckt.node("v2");
        let layout = MnaLayout::new(&ckt);
        let _ = layout; // layout built before sources for variety below
        let mut ckt2 = Circuit::new();
        let a = ckt2.node("a");
        let b = ckt2.node("b");
        ckt2.add_vsrc(a, Circuit::GROUND, SourceWave::Dc(2.0));
        let layout = MnaLayout::new(&ckt2);
        let mut st = Stamper::new(layout.size());
        st.conductance(a, b, 1e-3);
        st.conductance(b, Circuit::GROUND, 1e-3);
        let (_, row) = layout.vsrc_rows()[0];
        st.vsrc(row, a, Circuit::GROUND, 2.0);
        let (j, rhs) = st.finish();
        let x = SparseLu::factor(&j, 1e-3).unwrap().solve(&rhs);
        assert!((node_voltage(&x, a) - 2.0).abs() < 1e-12);
        assert!((node_voltage(&x, b) - 1.0).abs() < 1e-12);
        // Branch current: 1 mA flowing out of the source's + terminal.
        assert!((x[row] + 1e-3).abs() < 1e-12);
        let _ = (v1, v2);
    }

    #[test]
    fn current_source_injects() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let layout = MnaLayout::new(&ckt);
        let mut st = Stamper::new(layout.size());
        st.conductance(a, Circuit::GROUND, 1e-3);
        st.current_into(a, 2e-3);
        let (j, rhs) = st.finish();
        let x = SparseLu::factor(&j, 1e-3).unwrap().solve(&rhs);
        assert!((x[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ground_terminals_are_ignored_gracefully() {
        let mut st = Stamper::new(1);
        st.conductance(Circuit::GROUND, Circuit::GROUND, 1.0);
        st.current_into(Circuit::GROUND, 1.0);
        st.jacobian(Circuit::GROUND, NodeId::from_index(0), 1.0);
        st.diagonal(0, 1.0);
        let (j, rhs) = st.finish();
        assert_eq!(j.nnz(), 1);
        assert_eq!(rhs, vec![0.0]);
    }

    #[test]
    fn node_voltage_of_ground_is_zero() {
        assert_eq!(node_voltage(&[5.0], Circuit::GROUND), 0.0);
        assert_eq!(node_voltage(&[5.0], NodeId::from_index(0)), 5.0);
    }
}
