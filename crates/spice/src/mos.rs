//! Level-1 (Shichman–Hodges) MOSFET evaluation with exact derivatives.
//!
//! The model handles drain/source orientation swapping (symmetric
//! conduction) and PMOS polarity internally; the caller always works in the
//! original node frame.

use pcv_netlist::{MosKind, MosParams};

/// Linearized MOSFET operating point in the *original* node frame.
///
/// `ids` is the channel current flowing from the drain node to the source
/// node; the `g*` fields are its partial derivatives with respect to the
/// drain, gate and source node voltages respectively.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosStamp {
    /// Channel current, drain → source (amperes).
    pub ids: f64,
    /// `d ids / d v_drain`.
    pub g_d: f64,
    /// `d ids / d v_gate`.
    pub g_g: f64,
    /// `d ids / d v_source`.
    pub g_s: f64,
}

/// Core NMOS-like evaluation with `vds >= 0` guaranteed by the caller.
/// Returns `(ids, gm, gds)` with `gm = d ids/d vgs`, `gds = d ids/d vds`.
fn eval_core(beta: f64, vt: f64, lambda: f64, vgs: f64, vds: f64) -> (f64, f64, f64) {
    debug_assert!(vds >= 0.0);
    let vov = vgs - vt;
    if vov <= 0.0 {
        // Cutoff: exponential-free simple model, zero current.
        return (0.0, 0.0, 0.0);
    }
    let clm = 1.0 + lambda * vds;
    if vds < vov {
        // Triode.
        let shape = vov * vds - 0.5 * vds * vds;
        let ids = beta * shape * clm;
        let gm = beta * vds * clm;
        let gds = beta * (vov - vds) * clm + beta * shape * lambda;
        (ids, gm, gds)
    } else {
        // Saturation.
        let half = 0.5 * beta * vov * vov;
        let ids = half * clm;
        let gm = beta * vov * clm;
        let gds = half * lambda;
        (ids, gm, gds)
    }
}

/// Evaluate a Level-1 MOSFET at the given drain/gate/source node voltages.
///
/// Handles orientation (negative `vds`) and polarity (PMOS) so the returned
/// stamp is always expressed in the original node frame.
///
/// # Example
///
/// ```
/// # use pcv_netlist::MosParams;
/// # use pcv_spice::mos::eval_mos;
/// let p = MosParams::nmos_025(1e-6);
/// let on = eval_mos(&p, 2.5, 2.5, 0.0);
/// assert!(on.ids > 0.0);
/// let off = eval_mos(&p, 2.5, 0.0, 0.0);
/// assert_eq!(off.ids, 0.0);
/// ```
pub fn eval_mos(p: &MosParams, vd: f64, vg: f64, vs: f64) -> MosStamp {
    match p.kind {
        MosKind::Nmos => eval_oriented(p.beta(), p.vt0, p.lambda, vd, vg, vs),
        MosKind::Pmos => {
            // Polarity flip: a PMOS at (vd, vg, vs) behaves like an NMOS at
            // (-vd, -vg, -vs) with threshold -vt0 (> 0). With u = -v, the
            // flipped-frame current I_n equals minus the real drain current
            // and d(ids)/d(v) = d(-I_n)/d(-u) = dI_n/du, so derivatives map
            // through unchanged.
            let n = eval_oriented(p.beta(), -p.vt0, p.lambda, -vd, -vg, -vs);
            MosStamp { ids: -n.ids, g_d: n.g_d, g_g: n.g_g, g_s: n.g_s }
        }
    }
}

/// NMOS evaluation with drain/source orientation handling.
fn eval_oriented(beta: f64, vt: f64, lambda: f64, vd: f64, vg: f64, vs: f64) -> MosStamp {
    if vd >= vs {
        let (ids, gm, gds) = eval_core(beta, vt, lambda, vg - vs, vd - vs);
        MosStamp { ids, g_d: gds, g_g: gm, g_s: -(gm + gds) }
    } else {
        // Source and drain exchange roles; channel current reverses sign.
        // Oriented frame: vgs' = vg - vd, vds' = vs - vd.
        let (ids, gm, gds) = eval_core(beta, vt, lambda, vg - vd, vs - vd);
        MosStamp { ids: -ids, g_d: gm + gds, g_g: -gm, g_s: -gds }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fd_check(p: &MosParams, vd: f64, vg: f64, vs: f64) {
        let h = 1e-7;
        let base = eval_mos(p, vd, vg, vs);
        let fd_d = (eval_mos(p, vd + h, vg, vs).ids - eval_mos(p, vd - h, vg, vs).ids) / (2.0 * h);
        let fd_g = (eval_mos(p, vd, vg + h, vs).ids - eval_mos(p, vd, vg - h, vs).ids) / (2.0 * h);
        let fd_s = (eval_mos(p, vd, vg, vs + h).ids - eval_mos(p, vd, vg, vs - h).ids) / (2.0 * h);
        let tol = 1e-6 * (1.0 + base.ids.abs() / h);
        assert!((base.g_d - fd_d).abs() < tol.max(1e-9), "g_d {} vs fd {}", base.g_d, fd_d);
        assert!((base.g_g - fd_g).abs() < tol.max(1e-9), "g_g {} vs fd {}", base.g_g, fd_g);
        assert!((base.g_s - fd_s).abs() < tol.max(1e-9), "g_s {} vs fd {}", base.g_s, fd_s);
    }

    #[test]
    fn nmos_regions() {
        let p = MosParams::nmos_025(1e-6);
        // Cutoff.
        assert_eq!(eval_mos(&p, 2.5, 0.2, 0.0).ids, 0.0);
        // Saturation: vds > vov.
        let sat = eval_mos(&p, 2.5, 1.5, 0.0);
        assert!(sat.ids > 0.0);
        // Triode: small vds.
        let tri = eval_mos(&p, 0.1, 2.5, 0.0);
        assert!(tri.ids > 0.0 && tri.ids < sat.ids);
    }

    #[test]
    fn nmos_derivatives_match_finite_differences() {
        let p = MosParams::nmos_025(2e-6);
        // Away from region boundaries.
        for &(vd, vg, vs) in &[
            (2.5, 2.5, 0.0),  // triode-ish
            (2.5, 1.2, 0.0),  // saturation
            (0.05, 2.0, 0.0), // deep triode
            (0.0, 2.0, 2.5),  // reversed orientation
        ] {
            fd_check(&p, vd, vg, vs);
        }
    }

    #[test]
    fn pmos_derivatives_match_finite_differences() {
        let p = MosParams::pmos_025(4e-6);
        for &(vd, vg, vs) in &[
            (0.0, 0.0, 2.5), // on, pulling up
            (2.4, 0.0, 2.5), // near-on triode
            (0.0, 2.5, 2.5), // off
            (2.5, 0.0, 0.0), // reversed orientation
        ] {
            fd_check(&p, vd, vg, vs);
        }
    }

    #[test]
    fn pmos_pulls_up() {
        let p = MosParams::pmos_025(4e-6);
        // Gate low, source at vdd, drain low: current flows source→drain,
        // i.e. `ids` (drain→source) is negative.
        let s = eval_mos(&p, 0.0, 0.0, 2.5);
        assert!(s.ids < 0.0);
        // Gate high: off.
        assert_eq!(eval_mos(&p, 0.0, 2.5, 2.5).ids, 0.0);
    }

    #[test]
    fn orientation_is_antisymmetric() {
        let p = MosParams::nmos_025(1e-6);
        // Swapping drain and source voltages flips the current sign.
        let a = eval_mos(&p, 1.0, 2.5, 0.3);
        let b = eval_mos(&p, 0.3, 2.5, 1.0);
        assert!((a.ids + b.ids).abs() < 1e-12 * a.ids.abs().max(1e-15));
    }

    #[test]
    fn current_monotone_in_gate_drive() {
        let p = MosParams::nmos_025(1e-6);
        let mut prev = 0.0;
        for k in 0..10 {
            let vg = 0.6 + 0.2 * k as f64;
            let i = eval_mos(&p, 2.5, vg, 0.0).ids;
            assert!(i >= prev);
            prev = i;
        }
    }

    #[test]
    fn stronger_device_carries_more_current() {
        let p1 = MosParams::nmos_025(1e-6);
        let p4 = MosParams::nmos_025(4e-6);
        let i1 = eval_mos(&p1, 2.5, 2.5, 0.0).ids;
        let i4 = eval_mos(&p4, 2.5, 2.5, 0.0).ids;
        assert!((i4 / i1 - 4.0).abs() < 1e-9);
    }
}
