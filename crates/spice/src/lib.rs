//! A SPICE-class nonlinear transient circuit simulator.
//!
//! This crate is the *reference engine* of the PCV workspace: the DATE 1999
//! methodology validates its fast SyMPVL-based crosstalk analysis against
//! detailed SPICE runs, so a complete (if compact) SPICE substrate is part of
//! the reproduction. It provides:
//!
//! * Modified nodal analysis with automatic branch currents for voltage
//!   sources ([`mna`]).
//! * A Level-1 (Shichman–Hodges) MOSFET model with analytically exact
//!   derivatives ([`mos`]).
//! * DC operating-point solution with Newton–Raphson damping and `gmin`
//!   stepping ([`Simulator::dc`]).
//! * Transient analysis with trapezoidal integration (backward-Euler
//!   startup), source-breakpoint alignment and iteration-count step control
//!   ([`Simulator::transient`]).
//! * Waveform measurement utilities — peaks, crossings, delays, slews
//!   (re-exported [`Waveform`]).
//!
//! # Example
//!
//! An RC low-pass driven by a step:
//!
//! ```
//! # use pcv_netlist::{Circuit, SourceWave};
//! # use pcv_spice::{Simulator, SimOptions};
//! # fn main() -> Result<(), pcv_spice::SimError> {
//! let mut ckt = Circuit::new();
//! let inp = ckt.node("in");
//! let out = ckt.node("out");
//! ckt.add_vsrc(inp, Circuit::GROUND, SourceWave::step(0.0, 1.0, 0.0, 1e-12));
//! ckt.add_resistor(inp, out, 1_000.0);
//! ckt.add_capacitor(out, Circuit::GROUND, 1e-12); // tau = 1 ns
//! let result = Simulator::new(&ckt).transient(10e-9, &SimOptions::default())?;
//! let w = result.waveform(out);
//! assert!((w.value_at(10e-9) - 1.0).abs() < 1e-2);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod engine;
pub mod mna;
pub mod mos;

pub use engine::{SimError, SimOptions, Simulator, TranResult};
pub use pcv_netlist::Waveform;
