//! Physics-validation tests for the SPICE substrate: analytic circuits with
//! known closed-form behavior, device sweeps, and conservation checks.

use pcv_netlist::termination::CapacitiveTermination;
use pcv_netlist::{Circuit, MosParams, SourceWave};
use pcv_spice::mna::node_voltage;
use pcv_spice::{SimOptions, Simulator};

const VDD: f64 = 2.5;

#[test]
fn rc_divider_with_two_sources() {
    // Two voltage sources and a resistor bridge: superposition check.
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let b = ckt.node("b");
    let m = ckt.node("m");
    ckt.add_vsrc(a, Circuit::GROUND, SourceWave::Dc(2.0));
    ckt.add_vsrc(b, Circuit::GROUND, SourceWave::Dc(-1.0));
    ckt.add_resistor(a, m, 1000.0);
    ckt.add_resistor(b, m, 1000.0);
    ckt.add_resistor(m, Circuit::GROUND, 1000.0);
    let x = Simulator::new(&ckt).dc(&SimOptions::default()).unwrap();
    // v(m) = (2 - 1) / 3
    assert!((node_voltage(&x, m) - 1.0 / 3.0).abs() < 1e-9);
}

#[test]
fn capacitive_divider_charge_sharing() {
    // Series caps from a stepped source: v(mid) = C1/(C1+C2) * Vstep.
    let mut ckt = Circuit::new();
    let src = ckt.node("src");
    let mid = ckt.node("mid");
    ckt.add_vsrc(src, Circuit::GROUND, SourceWave::step(0.0, 1.0, 1e-10, 1e-12));
    ckt.add_capacitor(src, mid, 3e-15);
    ckt.add_capacitor(mid, Circuit::GROUND, 1e-15);
    let res = Simulator::new(&ckt).transient(1e-9, &SimOptions::default()).unwrap();
    let v = res.waveform(mid).value_at(1e-9);
    assert!((v - 0.75).abs() < 5e-3, "capacitive divider: {v}");
}

#[test]
fn rc_delay_scales_linearly_with_c() {
    let run = |c: f64| -> f64 {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsrc(a, Circuit::GROUND, SourceWave::step(0.0, 1.0, 0.0, 1e-12));
        ckt.add_resistor(a, b, 1000.0);
        ckt.add_capacitor(b, Circuit::GROUND, c);
        let res =
            Simulator::new(&ckt).transient(40.0 * 1000.0 * c, &SimOptions::default()).unwrap();
        res.waveform(b).crossing(0.5, true, 0.0).unwrap()
    };
    let t1 = run(1e-12);
    let t2 = run(2e-12);
    assert!((t2 / t1 - 2.0).abs() < 0.05, "tau doubling: {t1} vs {t2}");
    // And the absolute value matches ln(2) * RC.
    let expect = 0.693 * 1000.0 * 1e-12;
    assert!((t1 - expect).abs() / expect < 0.02, "{t1} vs {expect}");
}

#[test]
fn inverter_vtc_is_monotone_with_plausible_threshold() {
    // DC sweep of a CMOS inverter: output falls monotonically; the
    // crossover sits mid-rail for a balanced P/N ratio.
    let mut crossings = Vec::new();
    let mut prev = f64::INFINITY;
    for k in 0..=25 {
        let vin = VDD * k as f64 / 25.0;
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.add_vsrc(vdd, Circuit::GROUND, SourceWave::Dc(VDD));
        ckt.add_vsrc(inp, Circuit::GROUND, SourceWave::Dc(vin));
        ckt.add_mosfet(out, inp, Circuit::GROUND, MosParams::nmos_025(1e-6));
        ckt.add_mosfet(out, inp, vdd, MosParams::pmos_025(2.5e-6));
        let x = Simulator::new(&ckt).dc(&SimOptions::default()).unwrap();
        let vout = node_voltage(&x, out);
        assert!(vout <= prev + 1e-6, "VTC monotone at vin={vin}: {vout} > {prev}");
        if vout < 0.5 * VDD && prev >= 0.5 * VDD {
            crossings.push(vin);
        }
        prev = vout;
    }
    assert_eq!(crossings.len(), 1, "single switching threshold");
    assert!(
        crossings[0] > 0.3 * VDD && crossings[0] < 0.7 * VDD,
        "mid-rail threshold, got {}",
        crossings[0]
    );
}

#[test]
fn ring_oscillator_oscillates() {
    // A 3-stage ring oscillator: the classic self-consistency check for a
    // transient engine — DC has no stable point, the transient must swing.
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    ckt.add_vsrc(vdd, Circuit::GROUND, SourceWave::Dc(VDD));
    let stages = 3;
    let nodes: Vec<_> = (0..stages).map(|k| ckt.node(&format!("s{k}"))).collect();
    for k in 0..stages {
        let inp = nodes[k];
        let out = nodes[(k + 1) % stages];
        ckt.add_mosfet(out, inp, Circuit::GROUND, MosParams::nmos_025(1e-6));
        ckt.add_mosfet(out, inp, vdd, MosParams::pmos_025(2.5e-6));
        ckt.add_capacitor(out, Circuit::GROUND, 5e-15);
    }
    // A kick to break the metastable DC point.
    ckt.add_isrc(
        nodes[0],
        Circuit::GROUND,
        SourceWave::Pulse {
            v0: 0.0,
            v1: 50e-6,
            delay: 0.1e-9,
            rise: 10e-12,
            fall: 10e-12,
            width: 0.2e-9,
            period: f64::INFINITY,
        },
    );
    let res = Simulator::new(&ckt).transient(20e-9, &SimOptions::default()).unwrap();
    let w = res.waveform(nodes[0]);
    // Count rail-to-rail swings in the second half (after startup).
    let mut swings = 0;
    let mut t = 10e-9;
    while let Some(tc) = w.crossing(0.5 * VDD, true, t) {
        if tc >= 20e-9 {
            break;
        }
        swings += 1;
        t = tc + 1e-12;
    }
    assert!(swings >= 2, "ring oscillator must oscillate, saw {swings} rising crossings");
    let (_, hi) = w.max();
    let (_, lo) = w.min();
    assert!(hi > 0.8 * VDD && lo < 0.2 * VDD, "full swings: {lo}..{hi}");
}

#[test]
fn nand_gate_truth_table() {
    use pcv_cells::library::CellLibrary;
    let lib = CellLibrary::standard_025();
    let nand = lib.cell("NAND2X2").unwrap();
    for (a_in, b_in, expect_high) in
        [(0.0, 0.0, true), (0.0, VDD, true), (VDD, 0.0, true), (VDD, VDD, false)]
    {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let a = ckt.node("a");
        let b = ckt.node("b");
        let z = ckt.node("z");
        ckt.add_vsrc(vdd, Circuit::GROUND, SourceWave::Dc(VDD));
        ckt.add_vsrc(a, Circuit::GROUND, SourceWave::Dc(a_in));
        ckt.add_vsrc(b, Circuit::GROUND, SourceWave::Dc(b_in));
        nand.build(&mut ckt, &[a, b], z, vdd);
        let x = Simulator::new(&ckt).dc(&SimOptions::default()).unwrap();
        let vz = node_voltage(&x, z);
        if expect_high {
            assert!(vz > 0.9 * VDD, "NAND({a_in},{b_in}) high, got {vz}");
        } else {
            assert!(vz < 0.1 * VDD, "NAND({a_in},{b_in}) low, got {vz}");
        }
    }
}

#[test]
fn nor_gate_truth_table() {
    use pcv_cells::library::CellLibrary;
    let lib = CellLibrary::standard_025();
    let nor = lib.cell("NOR2X2").unwrap();
    for (a_in, b_in, expect_high) in
        [(0.0, 0.0, true), (0.0, VDD, false), (VDD, 0.0, false), (VDD, VDD, false)]
    {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let a = ckt.node("a");
        let b = ckt.node("b");
        let z = ckt.node("z");
        ckt.add_vsrc(vdd, Circuit::GROUND, SourceWave::Dc(VDD));
        ckt.add_vsrc(a, Circuit::GROUND, SourceWave::Dc(a_in));
        ckt.add_vsrc(b, Circuit::GROUND, SourceWave::Dc(b_in));
        nor.build(&mut ckt, &[a, b], z, vdd);
        let x = Simulator::new(&ckt).dc(&SimOptions::default()).unwrap();
        let vz = node_voltage(&x, z);
        if expect_high {
            assert!(vz > 0.9 * VDD, "NOR({a_in},{b_in}) high, got {vz}");
        } else {
            assert!(vz < 0.1 * VDD, "NOR({a_in},{b_in}) low, got {vz}");
        }
    }
}

#[test]
fn termination_capacitance_loads_the_circuit() {
    // Capacitive terminations must slow an RC edge like explicit caps.
    let run = |cap_term: Option<&CapacitiveTermination>| -> f64 {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsrc(a, Circuit::GROUND, SourceWave::step(0.0, 1.0, 0.0, 1e-12));
        ckt.add_resistor(a, b, 1000.0);
        ckt.add_capacitor(b, Circuit::GROUND, 0.5e-12);
        let mut sim = Simulator::new(&ckt);
        if let Some(t) = cap_term {
            sim.add_termination(b, t);
        }
        let res = sim.transient(20e-9, &SimOptions::default()).unwrap();
        res.waveform(b).crossing(0.5, true, 0.0).unwrap()
    };
    let bare = run(None);
    let term = CapacitiveTermination::new(0.5e-12);
    let loaded = run(Some(&term));
    assert!((loaded / bare - 2.0).abs() < 0.05, "termination doubles tau: {bare} -> {loaded}");
}

#[test]
fn energy_conservation_in_rc_charge() {
    // Charging a cap through a resistor: final stored energy CV²/2 and the
    // waveform never overshoots the source.
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let b = ckt.node("b");
    ckt.add_vsrc(a, Circuit::GROUND, SourceWave::step(0.0, 1.0, 0.0, 1e-12));
    ckt.add_resistor(a, b, 500.0);
    ckt.add_capacitor(b, Circuit::GROUND, 2e-12);
    let res = Simulator::new(&ckt).transient(10e-9, &SimOptions::default()).unwrap();
    let w = res.waveform(b);
    let (_, peak) = w.max();
    assert!(peak <= 1.0 + 1e-3, "passive RC never overshoots: {peak}");
    assert!(w.value_at(10e-9) > 0.99);
}
