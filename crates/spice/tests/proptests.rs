//! Property-based tests of simulator invariants over randomized linear
//! circuits: passivity, superposition, and step-size robustness.

use pcv_netlist::{Circuit, NodeId, SourceWave};
use pcv_spice::{SimOptions, Simulator};
use proptest::prelude::*;

/// Build a random RC ladder driven by a step source; returns the circuit
/// and the far-end node.
fn ladder(
    n: usize,
    res: &[f64],
    caps: &[f64],
    v_step: f64,
    rise: f64,
) -> (Circuit, NodeId) {
    let mut ckt = Circuit::new();
    let src = ckt.node("src");
    ckt.add_vsrc(src, Circuit::GROUND, SourceWave::step(0.0, v_step, 0.2e-9, rise));
    let mut prev = src;
    let mut last = src;
    for k in 0..n {
        let node = ckt.node(&format!("n{k}"));
        ckt.add_resistor(prev, node, res[k % res.len()]);
        ckt.add_capacitor(node, Circuit::GROUND, caps[k % caps.len()]);
        prev = node;
        last = node;
    }
    (ckt, last)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn rc_ladder_output_is_passive_and_settles(
        n in 1usize..8,
        res in prop::collection::vec(50.0f64..2e3, 8),
        caps in prop::collection::vec(1e-15f64..50e-15, 8),
        v_step in 0.5f64..3.0,
        rise in 1e-11f64..5e-10,
    ) {
        let (ckt, far) = ladder(n, &res, &caps, v_step, rise);
        // Simulate long enough for the slowest plausible tau.
        let tau: f64 = res.iter().take(n).sum::<f64>() * caps.iter().take(n).sum::<f64>();
        let tstop = (20.0 * tau).max(5e-9);
        let result = Simulator::new(&ckt).transient(tstop, &SimOptions::default()).unwrap();
        let w = result.waveform(far);
        // Passive RC never exceeds the source value.
        let (_, peak) = w.max();
        prop_assert!(peak <= v_step * (1.0 + 1e-3), "no overshoot: {} vs {}", peak, v_step);
        let (_, low) = w.min();
        prop_assert!(low >= -1e-3, "never below ground: {}", low);
        // And settles at the source value.
        prop_assert!((w.value_at(tstop) - v_step).abs() < 0.02 * v_step);
    }

    #[test]
    fn superposition_holds_on_linear_circuits(
        r1 in 100.0f64..2e3,
        r2 in 100.0f64..2e3,
        r3 in 100.0f64..2e3,
        va in -2.0f64..2.0,
        vb in -2.0f64..2.0,
    ) {
        // Bridge: a --r1-- m --r2-- b, m --r3-- gnd.
        let solve = |sa: f64, sb: f64| -> f64 {
            let mut ckt = Circuit::new();
            let a = ckt.node("a");
            let b = ckt.node("b");
            let m = ckt.node("m");
            ckt.add_vsrc(a, Circuit::GROUND, SourceWave::Dc(sa));
            ckt.add_vsrc(b, Circuit::GROUND, SourceWave::Dc(sb));
            ckt.add_resistor(a, m, r1);
            ckt.add_resistor(b, m, r2);
            ckt.add_resistor(m, Circuit::GROUND, r3);
            let x = Simulator::new(&ckt).dc(&SimOptions::default()).unwrap();
            x[m.index()]
        };
        let both = solve(va, vb);
        let only_a = solve(va, 0.0);
        let only_b = solve(0.0, vb);
        prop_assert!(
            (both - only_a - only_b).abs() < 1e-6,
            "superposition: {} vs {} + {}", both, only_a, only_b
        );
    }

    #[test]
    fn tighter_stepping_changes_results_little(
        r in 200.0f64..2e3,
        c in 5e-15f64..200e-15,
    ) {
        // Same RC edge at two step budgets: measurements must agree closely
        // (integration-order sanity).
        let run = |max_step_fraction: f64| -> f64 {
            let mut ckt = Circuit::new();
            let a = ckt.node("a");
            let b = ckt.node("b");
            ckt.add_vsrc(a, Circuit::GROUND, SourceWave::step(0.0, 1.0, 0.1e-9, 0.05e-9));
            ckt.add_resistor(a, b, r);
            ckt.add_capacitor(b, Circuit::GROUND, c);
            let opts = SimOptions { max_step_fraction, ..Default::default() };
            let tstop = (10.0 * r * c).max(2e-9);
            let res = Simulator::new(&ckt).transient(tstop, &opts).unwrap();
            res.waveform(b).crossing(0.5, true, 0.0).unwrap()
        };
        let coarse = run(1.0 / 300.0);
        let fine = run(1.0 / 3000.0);
        prop_assert!(
            (coarse - fine).abs() <= 0.02 * fine.max(1e-12),
            "step-size independence: {} vs {}", coarse, fine
        );
    }

    #[test]
    fn current_source_charge_balance(
        i_amp in 1e-6f64..1e-3,
        c in 10e-15f64..500e-15,
        dur in 0.2e-9f64..2e-9,
    ) {
        // A rectangular current pulse into a lone capacitor deposits Q = I·t,
        // so V = Q/C afterward (charge conservation through the integrator).
        let mut ckt = Circuit::new();
        let node = ckt.node("n");
        ckt.add_capacitor(node, Circuit::GROUND, c);
        ckt.add_isrc(
            Circuit::GROUND,
            node,
            SourceWave::Pulse {
                v0: 0.0,
                v1: i_amp,
                delay: 0.2e-9,
                rise: 1e-12,
                fall: 1e-12,
                width: dur,
                period: f64::INFINITY,
            },
        );
        let tstop = 0.2e-9 + dur + 1e-9;
        let res = Simulator::new(&ckt).transient(tstop, &SimOptions::default()).unwrap();
        let v_final = res.waveform(node).value_at(tstop);
        let expect = i_amp * (dur + 1e-12) / c; // trapezoid area incl. edges
        // gmin leakage makes the node sag slightly; allow 3%.
        prop_assert!(
            (v_final - expect).abs() <= 0.03 * expect,
            "charge balance: {} vs {}", v_final, expect
        );
    }
}
