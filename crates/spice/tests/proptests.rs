//! Randomized-property tests of simulator invariants over randomized linear
//! circuits: passivity, superposition, and step-size robustness. Driven by
//! the seeded internal PRNG so the workspace builds offline.

use pcv_netlist::{Circuit, NodeId, SourceWave};
use pcv_rng::Rng;
use pcv_spice::{SimOptions, Simulator};

/// Build a random RC ladder driven by a step source; returns the circuit
/// and the far-end node.
fn ladder(n: usize, res: &[f64], caps: &[f64], v_step: f64, rise: f64) -> (Circuit, NodeId) {
    let mut ckt = Circuit::new();
    let src = ckt.node("src");
    ckt.add_vsrc(src, Circuit::GROUND, SourceWave::step(0.0, v_step, 0.2e-9, rise));
    let mut prev = src;
    let mut last = src;
    for k in 0..n {
        let node = ckt.node(&format!("n{k}"));
        ckt.add_resistor(prev, node, res[k % res.len()]);
        ckt.add_capacitor(node, Circuit::GROUND, caps[k % caps.len()]);
        prev = node;
        last = node;
    }
    (ckt, last)
}

#[test]
fn rc_ladder_output_is_passive_and_settles() {
    let mut rng = Rng::new(0x5B1CE1);
    for _ in 0..16 {
        let n = rng.range_usize(1, 8);
        let res: Vec<f64> = (0..8).map(|_| rng.range_f64(50.0, 2e3)).collect();
        let caps: Vec<f64> = (0..8).map(|_| rng.range_f64(1e-15, 50e-15)).collect();
        let v_step = rng.range_f64(0.5, 3.0);
        let rise = rng.range_f64(1e-11, 5e-10);
        let (ckt, far) = ladder(n, &res, &caps, v_step, rise);
        // Simulate long enough for the slowest plausible tau.
        let tau: f64 = res.iter().take(n).sum::<f64>() * caps.iter().take(n).sum::<f64>();
        let tstop = (20.0 * tau).max(5e-9);
        let result = Simulator::new(&ckt).transient(tstop, &SimOptions::default()).unwrap();
        let w = result.waveform(far);
        // Passive RC never exceeds the source value.
        let (_, peak) = w.max();
        assert!(peak <= v_step * (1.0 + 1e-3), "no overshoot: {peak} vs {v_step}");
        let (_, low) = w.min();
        assert!(low >= -1e-3, "never below ground: {low}");
        // And settles at the source value.
        assert!((w.value_at(tstop) - v_step).abs() < 0.02 * v_step);
    }
}

#[test]
fn superposition_holds_on_linear_circuits() {
    let mut rng = Rng::new(0x5B1CE2);
    for _ in 0..16 {
        let r1 = rng.range_f64(100.0, 2e3);
        let r2 = rng.range_f64(100.0, 2e3);
        let r3 = rng.range_f64(100.0, 2e3);
        let va = rng.range_f64(-2.0, 2.0);
        let vb = rng.range_f64(-2.0, 2.0);
        // Bridge: a --r1-- m --r2-- b, m --r3-- gnd.
        let solve = |sa: f64, sb: f64| -> f64 {
            let mut ckt = Circuit::new();
            let a = ckt.node("a");
            let b = ckt.node("b");
            let m = ckt.node("m");
            ckt.add_vsrc(a, Circuit::GROUND, SourceWave::Dc(sa));
            ckt.add_vsrc(b, Circuit::GROUND, SourceWave::Dc(sb));
            ckt.add_resistor(a, m, r1);
            ckt.add_resistor(b, m, r2);
            ckt.add_resistor(m, Circuit::GROUND, r3);
            let x = Simulator::new(&ckt).dc(&SimOptions::default()).unwrap();
            x[m.index()]
        };
        let both = solve(va, vb);
        let only_a = solve(va, 0.0);
        let only_b = solve(0.0, vb);
        assert!(
            (both - only_a - only_b).abs() < 1e-6,
            "superposition: {both} vs {only_a} + {only_b}"
        );
    }
}

#[test]
fn tighter_stepping_changes_results_little() {
    let mut rng = Rng::new(0x5B1CE3);
    for _ in 0..16 {
        let r = rng.range_f64(200.0, 2e3);
        let c = rng.range_f64(5e-15, 200e-15);
        // Same RC edge at two step budgets: measurements must agree closely
        // (integration-order sanity).
        let run = |max_step_fraction: f64| -> f64 {
            let mut ckt = Circuit::new();
            let a = ckt.node("a");
            let b = ckt.node("b");
            ckt.add_vsrc(a, Circuit::GROUND, SourceWave::step(0.0, 1.0, 0.1e-9, 0.05e-9));
            ckt.add_resistor(a, b, r);
            ckt.add_capacitor(b, Circuit::GROUND, c);
            let opts = SimOptions { max_step_fraction, ..Default::default() };
            let tstop = (10.0 * r * c).max(2e-9);
            let res = Simulator::new(&ckt).transient(tstop, &opts).unwrap();
            res.waveform(b).crossing(0.5, true, 0.0).unwrap()
        };
        let coarse = run(1.0 / 300.0);
        let fine = run(1.0 / 3000.0);
        assert!(
            (coarse - fine).abs() <= 0.02 * fine.max(1e-12),
            "step-size independence: {coarse} vs {fine}"
        );
    }
}

#[test]
fn current_source_charge_balance() {
    let mut rng = Rng::new(0x5B1CE4);
    for _ in 0..16 {
        let i_amp = rng.range_f64(1e-6, 1e-3);
        let c = rng.range_f64(10e-15, 500e-15);
        let dur = rng.range_f64(0.2e-9, 2e-9);
        // A rectangular current pulse into a lone capacitor deposits Q = I·t,
        // so V = Q/C afterward (charge conservation through the integrator).
        let mut ckt = Circuit::new();
        let node = ckt.node("n");
        ckt.add_capacitor(node, Circuit::GROUND, c);
        ckt.add_isrc(
            Circuit::GROUND,
            node,
            SourceWave::Pulse {
                v0: 0.0,
                v1: i_amp,
                delay: 0.2e-9,
                rise: 1e-12,
                fall: 1e-12,
                width: dur,
                period: f64::INFINITY,
            },
        );
        let tstop = 0.2e-9 + dur + 1e-9;
        let res = Simulator::new(&ckt).transient(tstop, &SimOptions::default()).unwrap();
        let v_final = res.waveform(node).value_at(tstop);
        let expect = i_amp * (dur + 1e-12) / c; // trapezoid area incl. edges
                                                // gmin leakage makes the node sag slightly; allow 3%.
        assert!((v_final - expect).abs() <= 0.03 * expect, "charge balance: {v_final} vs {expect}");
    }
}
