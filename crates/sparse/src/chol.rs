//! Sparse Cholesky factorization `A = L Lᵀ` for symmetric positive definite
//! matrices, using the classic up-looking algorithm driven by the
//! elimination tree.
//!
//! This is the symmetrization engine of SyMPVL: the MNA conductance matrix
//! `G` of an RC cluster is SPD, and the reduction needs repeated triangular
//! solves with `F = Lᵀ` (so that `G = FᵀF`).

use crate::error::Error;
use crate::sparse::Csc;

const NONE: usize = usize::MAX;

/// Compute the elimination tree of a symmetric matrix given in CSC form
/// (only the upper-triangular entries are consulted).
///
/// Returns `parent` with `parent[k] == usize::MAX` for roots.
pub fn etree(a: &Csc) -> Vec<usize> {
    let n = a.ncols();
    let mut parent = vec![NONE; n];
    let mut ancestor = vec![NONE; n];
    for k in 0..n {
        for (i0, _) in a.col_iter(k) {
            let mut i = i0;
            // Traverse from i toward the root, compressing paths.
            while i != NONE && i < k {
                let inext = ancestor[i];
                ancestor[i] = k;
                if inext == NONE {
                    parent[i] = k;
                }
                i = inext;
            }
        }
    }
    parent
}

/// Nonzero pattern of row `k` of `L` (the *ereach* of column `k`): columns
/// `j < k` such that `L(k,j) != 0`, returned in topological order suitable
/// for the up-looking triangular solve.
fn ereach(
    a: &Csc,
    k: usize,
    parent: &[usize],
    visited: &mut [bool],
    stack: &mut Vec<usize>,
) -> Vec<usize> {
    stack.clear();
    let mut pattern: Vec<usize> = Vec::new();
    visited[k] = true;
    for (i0, _) in a.col_iter(k) {
        if i0 > k {
            continue;
        }
        let mut i = i0;
        let path_start = stack.len();
        while !visited[i] {
            stack.push(i);
            visited[i] = true;
            i = parent[i];
        }
        // Reverse the freshly discovered path so ancestors come later.
        stack[path_start..].reverse();
    }
    // stack currently holds disjoint ascending paths; a global sort by node
    // index yields a valid topological order for the etree (children < parents
    // in the natural ordering of a Cholesky etree).
    pattern.extend_from_slice(stack);
    pattern.sort_unstable();
    for &j in &pattern {
        visited[j] = false;
    }
    visited[k] = false;
    pattern
}

/// A sparse Cholesky factorization of an SPD matrix in natural ordering.
///
/// Apply a fill-reducing permutation (e.g. [`crate::order::rcm`]) to the
/// matrix *before* factoring if fill is a concern; keeping the permutation
/// external lets SyMPVL keep `G`, `C` and `B` in one consistent ordering.
///
/// # Example
///
/// ```
/// # use pcv_sparse::{Triplets, SparseCholesky};
/// # fn main() -> Result<(), pcv_sparse::Error> {
/// let mut t = Triplets::new(2, 2);
/// t.push(0, 0, 2.0); t.push(1, 1, 3.0); t.push(0, 1, 1.0); t.push(1, 0, 1.0);
/// let chol = SparseCholesky::factor(&t.to_csc())?;
/// let x = chol.solve(&[3.0, 4.0]);
/// assert!((2.0 * x[0] + x[1] - 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SparseCholesky {
    n: usize,
    /// Lower-triangular factor, CSC, diagonal first in each column.
    l: Csc,
}

impl SparseCholesky {
    /// Factor a symmetric positive definite matrix.
    ///
    /// Only the upper triangle (including the diagonal) of `a` is read, so a
    /// fully stored symmetric matrix works as-is.
    ///
    /// # Errors
    ///
    /// * [`Error::NotSquare`] if `a` is rectangular.
    /// * [`Error::NotPositiveDefinite`] if a non-positive pivot appears.
    pub fn factor(a: &Csc) -> Result<Self, Error> {
        if a.nrows() != a.ncols() {
            return Err(Error::NotSquare { nrows: a.nrows(), ncols: a.ncols() });
        }
        let _span = pcv_trace::span("sparse", "chol_factor");
        pcv_trace::count("sparse.chol.factors", 1);
        pcv_trace::value("sparse.chol.dim", a.ncols() as u64);
        let n = a.ncols();
        let parent = etree(a);
        let mut visited = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();

        // Symbolic pass: column counts of L (excluding the diagonal).
        let mut counts = vec![1usize; n]; // 1 for each diagonal
        let mut patterns: Vec<Vec<usize>> = Vec::with_capacity(n);
        for k in 0..n {
            let pat = ereach(a, k, &parent, &mut visited, &mut stack);
            for &j in &pat {
                counts[j] += 1;
            }
            patterns.push(pat);
        }
        let mut colptr = vec![0usize; n + 1];
        for k in 0..n {
            colptr[k + 1] = colptr[k] + counts[k];
        }
        let nnz = colptr[n];
        let mut rowidx = vec![0usize; nnz];
        let mut values = vec![0.0f64; nnz];
        // `fill[j]` is the next free slot in column j of L.
        let mut fill: Vec<usize> = colptr[..n].to_vec();

        // Numeric up-looking pass: compute row k of L for each k.
        let mut x = vec![0.0f64; n];
        for (k, pat) in patterns.iter().enumerate() {
            // Scatter the upper-triangular part of A(:,k).
            let mut d = 0.0;
            for (i, v) in a.col_iter(k) {
                if i < k {
                    x[i] = v;
                } else if i == k {
                    d = v;
                }
            }
            for &j in pat {
                // L(k,j) = x[j] / L(j,j); L(j,j) is the first entry of col j.
                let ljj = values[colptr[j]];
                let lkj = x[j] / ljj;
                x[j] = 0.0;
                // x -= L(:,j) * lkj for rows below j already stored in col j.
                for p in (colptr[j] + 1)..fill[j] {
                    x[rowidx[p]] -= values[p] * lkj;
                }
                d -= lkj * lkj;
                let p = fill[j];
                fill[j] += 1;
                rowidx[p] = k;
                values[p] = lkj;
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(Error::NotPositiveDefinite { col: k, pivot: d });
            }
            let p = fill[k];
            fill[k] += 1;
            rowidx[p] = k;
            values[p] = d.sqrt();
            // Note: the diagonal is written *after* the off-diagonals of
            // earlier columns but is always the first slot of column k,
            // because fill[k] started at colptr[k] and column k receives its
            // first write here (row k is the smallest row in column k).
        }
        debug_assert_eq!(fill, colptr[1..].to_vec());

        // Columns may have been filled out of order within each column?
        // No: rows are appended in increasing k, so each column's row indices
        // are strictly increasing. But the diagonal of column k is appended at
        // step k while off-diagonal entries (rows > k) are appended at later
        // steps, so ordering is: diagonal first, then increasing rows. Good.
        let l = Csc::from_parts(n, n, colptr, rowidx, values);
        Ok(SparseCholesky { n, l })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// The lower-triangular factor `L` (diagonal stored first per column).
    pub fn l(&self) -> &Csc {
        &self.l
    }

    /// Number of nonzeros in `L`.
    pub fn nnz(&self) -> usize {
        self.l.nnz()
    }

    /// Solve `A x = b` via `L Lᵀ x = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the matrix dimension.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        pcv_trace::count("sparse.chol.solves", 1);
        let mut x = b.to_vec();
        self.solve_lower_in_place(&mut x);
        self.solve_lower_t_in_place(&mut x);
        x
    }

    /// Solve `A x = b` and verify the solution is finite — the guard that
    /// keeps a NaN/Inf produced by an ill-conditioned factor from leaking
    /// into downstream results as a silently-wrong number.
    ///
    /// # Errors
    ///
    /// [`Error::NonFinite`] when any solution component is NaN or infinite.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the matrix dimension.
    pub fn try_solve(&self, b: &[f64]) -> Result<Vec<f64>, Error> {
        let x = self.solve(b);
        crate::error::ensure_finite(&x, "cholesky solve")?;
        Ok(x)
    }

    /// Solve `L y = b` in place (forward substitution).
    ///
    /// In SyMPVL terms, with `F = Lᵀ` this computes `F⁻ᵀ b`.
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the matrix dimension.
    pub fn solve_lower_in_place(&self, x: &mut [f64]) {
        assert_eq!(x.len(), self.n, "solve_lower: length mismatch");
        pcv_trace::count("sparse.chol.tri_solves", 1);
        let (cp, ri, vv) = (self.l.colptr(), self.l.rowidx(), self.l.values());
        for j in 0..self.n {
            let xj = x[j] / vv[cp[j]];
            x[j] = xj;
            for p in (cp[j] + 1)..cp[j + 1] {
                x[ri[p]] -= vv[p] * xj;
            }
        }
    }

    /// Solve `Lᵀ x = b` in place (backward substitution).
    ///
    /// In SyMPVL terms, with `F = Lᵀ` this computes `F⁻¹ b`.
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the matrix dimension.
    pub fn solve_lower_t_in_place(&self, x: &mut [f64]) {
        assert_eq!(x.len(), self.n, "solve_lower_t: length mismatch");
        pcv_trace::count("sparse.chol.tri_solves", 1);
        let (cp, ri, vv) = (self.l.colptr(), self.l.rowidx(), self.l.values());
        for j in (0..self.n).rev() {
            let mut sum = x[j];
            for p in (cp[j] + 1)..cp[j + 1] {
                sum -= vv[p] * x[ri[p]];
            }
            x[j] = sum / vv[cp[j]];
        }
    }

    /// Multiply `y = Fᵀ x = L x` (lower-triangular product).
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the matrix dimension.
    pub fn mul_lower(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n, "mul_lower: length mismatch");
        self.l.matvec(x)
    }

    /// Multiply `y = F x = Lᵀ x` (upper-triangular product).
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the matrix dimension.
    pub fn mul_lower_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n, "mul_lower_t: length mismatch");
        self.l.matvec_t(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::Triplets;

    fn spd_tridiag(n: usize) -> Csc {
        // Standard SPD tridiagonal [2 -1; -1 2 ...], like a resistor chain.
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.0);
            if i + 1 < n {
                t.push(i, i + 1, -1.0);
                t.push(i + 1, i, -1.0);
            }
        }
        t.to_csc()
    }

    #[test]
    fn etree_of_tridiagonal_is_a_chain() {
        let a = spd_tridiag(5);
        let p = etree(&a);
        assert_eq!(p, vec![1, 2, 3, 4, usize::MAX]);
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let a = spd_tridiag(8);
        let chol = SparseCholesky::factor(&a).unwrap();
        let l = chol.l().to_dense();
        let llt = l.matmul(&l.transpose()).unwrap();
        let ad = a.to_dense();
        for r in 0..8 {
            for c in 0..8 {
                assert!((llt[(r, c)] - ad[(r, c)]).abs() < 1e-12, "entry {r},{c}");
            }
        }
    }

    #[test]
    fn solve_matches_known_solution() {
        let a = spd_tridiag(50);
        let chol = SparseCholesky::factor(&a).unwrap();
        let xref: Vec<f64> = (0..50).map(|i| (i as f64 * 0.37).sin()).collect();
        let b = a.matvec(&xref);
        let x = chol.solve(&b);
        for (xi, ri) in x.iter().zip(&xref) {
            assert!((xi - ri).abs() < 1e-10);
        }
    }

    #[test]
    fn factor_with_fill_in() {
        // Arrow matrix: dense first row/col forces fill-in handling.
        let n = 6;
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, 10.0);
        }
        for i in 1..n {
            t.push(0, i, 1.0);
            t.push(i, 0, 1.0);
        }
        // Extra off-diagonal to create an interior path.
        t.push(2, 4, 0.5);
        t.push(4, 2, 0.5);
        let a = t.to_csc();
        let chol = SparseCholesky::factor(&a).unwrap();
        let l = chol.l().to_dense();
        let llt = l.matmul(&l.transpose()).unwrap();
        let ad = a.to_dense();
        for r in 0..n {
            for c in 0..n {
                assert!((llt[(r, c)] - ad[(r, c)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn rejects_indefinite() {
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 1, -1.0);
        let err = SparseCholesky::factor(&t.to_csc()).unwrap_err();
        assert!(matches!(err, Error::NotPositiveDefinite { col: 1, .. }));
    }

    #[test]
    fn rejects_rectangular() {
        let a = Csc::zeros(2, 3);
        assert!(matches!(SparseCholesky::factor(&a), Err(Error::NotSquare { nrows: 2, ncols: 3 })));
    }

    #[test]
    fn triangular_ops_are_inverses() {
        let a = spd_tridiag(10);
        let chol = SparseCholesky::factor(&a).unwrap();
        let v: Vec<f64> = (0..10).map(|i| 1.0 + i as f64).collect();
        // F⁻¹ (F v) = v with F = Lᵀ.
        let fv = chol.mul_lower_t(&v);
        let mut back = fv.clone();
        chol.solve_lower_t_in_place(&mut back);
        for (bi, vi) in back.iter().zip(&v) {
            assert!((bi - vi).abs() < 1e-12);
        }
        // F⁻ᵀ (Fᵀ v) = v.
        let ftv = chol.mul_lower(&v);
        let mut back2 = ftv.clone();
        chol.solve_lower_in_place(&mut back2);
        for (bi, vi) in back2.iter().zip(&v) {
            assert!((bi - vi).abs() < 1e-12);
        }
    }

    #[test]
    fn diagonal_is_first_entry_per_column() {
        let a = spd_tridiag(6);
        let chol = SparseCholesky::factor(&a).unwrap();
        let l = chol.l();
        for j in 0..6 {
            assert_eq!(l.rowidx()[l.colptr()[j]], j);
        }
    }
}
