//! Symmetric eigensolvers.
//!
//! The SyMPVL reduced model `dv/dt + T v = ρ i` is integrated after
//! diagonalizing the small symmetric matrix `T = Qᵀ D Q`. Two solvers are
//! provided:
//!
//! * [`jacobi_eigen`] — cyclic Jacobi rotations for a general dense symmetric
//!   matrix (robust, adequate for the tens-of-states reduced models).
//! * [`tridiag_eigen`] — implicit-shift QL for symmetric tridiagonal
//!   matrices, the natural shape of a single-port Lanczos projection.

use crate::dense::Dense;
use crate::error::Error;

/// Eigendecomposition `A = V diag(w) Vᵀ` of a symmetric matrix.
#[derive(Debug, Clone)]
pub struct SymEigen {
    /// Eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors as *columns* of `V`.
    pub vectors: Dense,
}

impl SymEigen {
    /// Reconstruct `A` from the decomposition (test/diagnostic helper).
    pub fn reconstruct(&self) -> Dense {
        let n = self.values.len();
        let v = &self.vectors;
        Dense::from_fn(n, n, |r, c| (0..n).map(|k| v[(r, k)] * self.values[k] * v[(c, k)]).sum())
    }
}

/// Cyclic Jacobi eigensolver for a dense symmetric matrix.
///
/// The input is symmetrized (averaged with its transpose) before iterating,
/// so tiny rounding asymmetry is tolerated.
///
/// # Errors
///
/// * [`Error::NotSquare`] if `a` is rectangular.
/// * [`Error::NoConvergence`] if the off-diagonal norm fails to vanish within
///   the sweep budget (does not occur for well-formed symmetric input).
pub fn jacobi_eigen(a: &Dense) -> Result<SymEigen, Error> {
    if a.nrows() != a.ncols() {
        return Err(Error::NotSquare { nrows: a.nrows(), ncols: a.ncols() });
    }
    let n = a.nrows();
    let mut m = a.clone();
    m.symmetrize();
    let mut v = Dense::identity(n);
    if n <= 1 {
        let values = if n == 1 { vec![m[(0, 0)]] } else { Vec::new() };
        return Ok(SymEigen { values, vectors: v });
    }

    let max_sweeps = 64;
    for sweep in 0..max_sweeps {
        // Off-diagonal Frobenius norm.
        let mut off = 0.0;
        for r in 0..n {
            for c in (r + 1)..n {
                off += m[(r, c)] * m[(r, c)];
            }
        }
        let scale = m.norm_frobenius().max(1e-300);
        if off.sqrt() <= 1e-14 * scale {
            return Ok(finish(m, v));
        }
        let _ = sweep;
        for p in 0..n - 1 {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq == 0.0 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                // Classic stable rotation computation.
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Apply rotation to rows/columns p and q of M.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                // Accumulate eigenvectors.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    Err(Error::NoConvergence { what: "jacobi eigensolver", iters: max_sweeps })
}

fn finish(m: Dense, v: Dense) -> SymEigen {
    let n = m.nrows();
    let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (m[(i, i)], i)).collect();
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("eigenvalues are finite"));
    let values: Vec<f64> = pairs.iter().map(|&(w, _)| w).collect();
    let mut vectors = Dense::zeros(n, n);
    for (new, &(_, old)) in pairs.iter().enumerate() {
        let col = v.col(old);
        vectors.set_col(new, &col);
    }
    SymEigen { values, vectors }
}

/// Implicit-shift QL eigensolver for a symmetric tridiagonal matrix with
/// diagonal `d` and sub/super-diagonal `e` (`e.len() == d.len() - 1`, or both
/// empty).
///
/// Returns eigenvalues ascending and the orthonormal eigenvector matrix.
///
/// # Errors
///
/// * [`Error::DimensionMismatch`] if `e.len() + 1 != d.len()` (for nonempty
///   `d`).
/// * [`Error::NoConvergence`] if an eigenvalue fails to converge in 50
///   iterations (does not occur for finite input).
pub fn tridiag_eigen(d: &[f64], e: &[f64]) -> Result<SymEigen, Error> {
    let n = d.len();
    if n == 0 {
        return Ok(SymEigen { values: Vec::new(), vectors: Dense::zeros(0, 0) });
    }
    if e.len() + 1 != n {
        return Err(Error::DimensionMismatch {
            op: "tridiag_eigen",
            expected: (n - 1, 1),
            found: (e.len(), 1),
        });
    }
    let mut d = d.to_vec();
    // Work array with a trailing zero, as in the classic tql2 routine.
    let mut e2 = vec![0.0; n];
    e2[..n - 1].copy_from_slice(e);
    let mut z = Dense::identity(n);

    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find a small off-diagonal element to split at.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e2[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > 50 {
                return Err(Error::NoConvergence { what: "tridiagonal ql", iters: 50 });
            }
            // Form the implicit shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e2[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e2[l] / (g + if g >= 0.0 { r.abs() } else { -r.abs() });
            let (mut s, mut c) = (1.0, 1.0);
            let mut p = 0.0;
            let mut i = m - 1;
            let mut underflow_break = false;
            loop {
                let mut f = s * e2[i];
                let b = c * e2[i];
                r = f.hypot(g);
                e2[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e2[m] = 0.0;
                    underflow_break = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Accumulate the transformation in z.
                for k in 0..n {
                    f = z[(k, i + 1)];
                    z[(k, i + 1)] = s * z[(k, i)] + c * f;
                    z[(k, i)] = c * z[(k, i)] - s * f;
                }
                if i == l {
                    break;
                }
                i -= 1;
            }
            if underflow_break {
                // Deflation by underflow: restart this eigenvalue.
                continue;
            }
            d[l] -= p;
            e2[l] = g;
            e2[m] = 0.0;
        }
    }

    // Sort ascending, permuting eigenvectors along.
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| d[a].partial_cmp(&d[b]).expect("finite eigenvalues"));
    let values: Vec<f64> = idx.iter().map(|&i| d[i]).collect();
    let mut vectors = Dense::zeros(n, n);
    for (new, &old) in idx.iter().enumerate() {
        let col = z.col(old);
        vectors.set_col(new, &col);
    }
    Ok(SymEigen { values, vectors })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    fn check_decomposition(a: &Dense, eig: &SymEigen, tol: f64) {
        let rec = eig.reconstruct();
        for r in 0..a.nrows() {
            for c in 0..a.ncols() {
                assert_close(rec[(r, c)], a[(r, c)], tol);
            }
        }
        // Orthonormality.
        let vtv = eig.vectors.transpose().matmul(&eig.vectors).unwrap();
        for r in 0..a.nrows() {
            for c in 0..a.ncols() {
                assert_close(vtv[(r, c)], if r == c { 1.0 } else { 0.0 }, tol);
            }
        }
    }

    #[test]
    fn jacobi_2x2_known_values() {
        let a = Dense::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let eig = jacobi_eigen(&a).unwrap();
        assert_close(eig.values[0], 1.0, 1e-12);
        assert_close(eig.values[1], 3.0, 1e-12);
        check_decomposition(&a, &eig, 1e-12);
    }

    #[test]
    fn jacobi_diagonal_is_identity_rotation() {
        let a = Dense::from_diag(&[3.0, 1.0, 2.0]);
        let eig = jacobi_eigen(&a).unwrap();
        assert_eq!(eig.values, vec![1.0, 2.0, 3.0]);
        check_decomposition(&a, &eig, 1e-14);
    }

    #[test]
    fn jacobi_random_symmetric() {
        // Deterministic pseudo-random symmetric matrix.
        let n = 12;
        let mut a = Dense::from_fn(n, n, |r, c| ((r * 31 + c * 17) % 13) as f64 / 13.0);
        a.symmetrize();
        let eig = jacobi_eigen(&a).unwrap();
        check_decomposition(&a, &eig, 1e-10);
        // Ascending eigenvalues.
        for w in eig.values.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn jacobi_handles_trivial_sizes() {
        let e0 = jacobi_eigen(&Dense::zeros(0, 0)).unwrap();
        assert!(e0.values.is_empty());
        let e1 = jacobi_eigen(&Dense::from_diag(&[7.0])).unwrap();
        assert_eq!(e1.values, vec![7.0]);
    }

    #[test]
    fn jacobi_rejects_rectangular() {
        assert!(matches!(jacobi_eigen(&Dense::zeros(2, 3)), Err(Error::NotSquare { .. })));
    }

    #[test]
    fn tridiag_matches_jacobi() {
        let d = [2.0, 2.5, 3.0, 1.5, 2.2];
        let e = [0.5, -0.3, 0.8, 0.1];
        let eig = tridiag_eigen(&d, &e).unwrap();
        // Build the dense equivalent and compare spectra.
        let n = d.len();
        let mut a = Dense::from_diag(&d);
        for i in 0..n - 1 {
            a[(i, i + 1)] = e[i];
            a[(i + 1, i)] = e[i];
        }
        let jac = jacobi_eigen(&a).unwrap();
        for (x, y) in eig.values.iter().zip(&jac.values) {
            assert_close(*x, *y, 1e-10);
        }
        check_decomposition(&a, &eig, 1e-10);
    }

    #[test]
    fn tridiag_singleton_and_empty() {
        let e = tridiag_eigen(&[4.0], &[]).unwrap();
        assert_eq!(e.values, vec![4.0]);
        let e0 = tridiag_eigen(&[], &[]).unwrap();
        assert!(e0.values.is_empty());
    }

    #[test]
    fn tridiag_rejects_bad_lengths() {
        assert!(matches!(
            tridiag_eigen(&[1.0, 2.0], &[0.1, 0.2]),
            Err(Error::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn spd_matrix_has_positive_eigenvalues() {
        // Resistive-chain-like SPD matrix.
        let n = 9;
        let mut a = Dense::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = 2.0;
            if i + 1 < n {
                a[(i, i + 1)] = -1.0;
                a[(i + 1, i)] = -1.0;
            }
        }
        let eig = jacobi_eigen(&a).unwrap();
        assert!(eig.values.iter().all(|&w| w > 0.0));
    }
}
