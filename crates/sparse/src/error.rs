//! Error type shared by all factorizations and solvers in this crate.

use std::fmt;

/// Errors produced by the linear-algebra kernels.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The matrix is not symmetric positive definite; Cholesky broke down at
    /// the given pivot column with the given (non-positive) pivot value.
    NotPositiveDefinite {
        /// Column at which the factorization failed.
        col: usize,
        /// The offending pivot value.
        pivot: f64,
    },
    /// The matrix is numerically singular; no acceptable pivot was found in
    /// the given column.
    Singular {
        /// Column at which no pivot was found.
        col: usize,
    },
    /// Operand dimensions do not agree.
    DimensionMismatch {
        /// What was being attempted, e.g. `"matvec"`.
        op: &'static str,
        /// Dimensions that were expected.
        expected: (usize, usize),
        /// Dimensions that were found.
        found: (usize, usize),
    },
    /// A square matrix was required.
    NotSquare {
        /// Number of rows.
        nrows: usize,
        /// Number of columns.
        ncols: usize,
    },
    /// An iterative method failed to converge within its iteration budget.
    NoConvergence {
        /// The algorithm that failed, e.g. `"jacobi eigensolver"`.
        what: &'static str,
        /// Iterations performed.
        iters: usize,
    },
    /// A solve or factorization produced a NaN or infinite value. Surfaced
    /// as a typed error so non-finite numbers fail fast at the kernel
    /// boundary instead of poisoning downstream verdicts.
    NonFinite {
        /// The operation whose output was non-finite, e.g. `"cholesky solve"`.
        what: &'static str,
    },
}

/// Check that every element of `xs` is finite; [`Error::NonFinite`]
/// otherwise. The guard the solver outputs and model waveforms go through
/// before results are trusted.
///
/// # Errors
///
/// [`Error::NonFinite`] naming `what` when any element is NaN or infinite.
pub fn ensure_finite(xs: &[f64], what: &'static str) -> Result<(), Error> {
    if xs.iter().all(|x| x.is_finite()) {
        Ok(())
    } else {
        Err(Error::NonFinite { what })
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NotPositiveDefinite { col, pivot } => {
                write!(f, "matrix is not positive definite: pivot {pivot:e} at column {col}")
            }
            Error::Singular { col } => {
                write!(f, "matrix is numerically singular at column {col}")
            }
            Error::DimensionMismatch { op, expected, found } => write!(
                f,
                "dimension mismatch in {op}: expected {}x{}, found {}x{}",
                expected.0, expected.1, found.0, found.1
            ),
            Error::NotSquare { nrows, ncols } => {
                write!(f, "square matrix required, found {nrows}x{ncols}")
            }
            Error::NoConvergence { what, iters } => {
                write!(f, "{what} did not converge after {iters} iterations")
            }
            Error::NonFinite { what } => {
                write!(f, "{what} produced a non-finite (NaN or infinite) value")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = Error::NotPositiveDefinite { col: 3, pivot: -1.0 };
        let s = e.to_string();
        assert!(s.contains("column 3"));
        assert!(s.starts_with(char::is_lowercase));

        let e = Error::Singular { col: 7 };
        assert!(e.to_string().contains('7'));

        let e = Error::DimensionMismatch { op: "matvec", expected: (3, 1), found: (4, 1) };
        assert!(e.to_string().contains("matvec"));

        let e = Error::NotSquare { nrows: 2, ncols: 3 };
        assert!(e.to_string().contains("2x3"));

        let e = Error::NoConvergence { what: "jacobi", iters: 50 };
        assert!(e.to_string().contains("50"));

        let e = Error::NonFinite { what: "cholesky solve" };
        assert!(e.to_string().contains("cholesky solve"));
        assert!(e.to_string().contains("non-finite"));
    }

    #[test]
    fn ensure_finite_accepts_finite_and_rejects_nan_inf() {
        assert!(ensure_finite(&[0.0, -1.5, 1e300], "x").is_ok());
        assert!(ensure_finite(&[], "x").is_ok());
        assert_eq!(
            ensure_finite(&[0.0, f64::NAN], "solve"),
            Err(Error::NonFinite { what: "solve" })
        );
        assert_eq!(
            ensure_finite(&[f64::INFINITY], "solve"),
            Err(Error::NonFinite { what: "solve" })
        );
        assert_eq!(
            ensure_finite(&[f64::NEG_INFINITY, 1.0], "solve"),
            Err(Error::NonFinite { what: "solve" })
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
