//! Dense and sparse linear-algebra kernels for parasitic-coupling verification.
//!
//! This crate is the numerical substrate of the PCV workspace. It provides
//! exactly the kernels the DATE 1999 SyMPVL methodology needs, implemented
//! from scratch so the workspace has no external numerical dependencies:
//!
//! * [`Dense`] — a small row-major dense matrix with LU, QR and
//!   matrix products, used for reduced-order models and Newton Jacobians.
//! * [`Triplets`] / [`Csc`] — coordinate-format assembly and compressed
//!   sparse column storage with matrix–vector products and permutations,
//!   used for MNA conductance/capacitance matrices.
//! * [`chol::SparseCholesky`] — an up-looking sparse Cholesky factorization
//!   (`G = LLᵀ`), the symmetrization step of SyMPVL.
//! * [`lu::SparseLu`] — a left-looking Gilbert–Peierls sparse LU with
//!   partial pivoting, the linear-solve engine of the SPICE substrate.
//! * [`eig`] — a cyclic Jacobi eigensolver for dense symmetric matrices and
//!   an implicit-shift QL solver for symmetric tridiagonal matrices, used to
//!   diagonalize the reduced model (`T = QᵀDQ`).
//! * [`order`] — reverse Cuthill–McKee fill-reducing ordering.
//!
//! # Example
//!
//! Solve a small SPD system with the sparse Cholesky factorization:
//!
//! ```
//! # use pcv_sparse::{Triplets, chol::SparseCholesky};
//! # fn main() -> Result<(), pcv_sparse::Error> {
//! let mut t = Triplets::new(3, 3);
//! t.push(0, 0, 4.0); t.push(1, 1, 5.0); t.push(2, 2, 6.0);
//! t.push(0, 1, 1.0); t.push(1, 0, 1.0);
//! let a = t.to_csc();
//! let chol = SparseCholesky::factor(&a)?;
//! let x = chol.solve(&[1.0, 2.0, 3.0]);
//! # assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod chol;
pub mod dense;
pub mod eig;
pub mod error;
pub mod lu;
pub mod order;
pub mod sparse;
pub mod vecops;

pub use chol::SparseCholesky;
pub use dense::Dense;
pub use error::{ensure_finite, Error};
pub use lu::SparseLu;
pub use sparse::{Csc, Triplets};
