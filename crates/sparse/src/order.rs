//! Fill-reducing orderings.
//!
//! RC interconnect matrices are tree-like with a few coupling edges, so the
//! classic reverse Cuthill–McKee ordering keeps both Cholesky and LU fill
//! small without the complexity of a minimum-degree code.

use crate::sparse::Csc;

/// Compute a reverse Cuthill–McKee ordering of a square sparse matrix's
/// symmetrized pattern.
///
/// Returns `perm` with `perm[new] = old`, suitable for
/// [`Csc::permute_sym`]. Disconnected components are each started from a
/// pseudo-peripheral vertex.
///
/// # Panics
///
/// Panics if the matrix is not square.
pub fn rcm(a: &Csc) -> Vec<usize> {
    assert_eq!(a.nrows(), a.ncols(), "rcm: square matrix required");
    let n = a.ncols();
    // Build symmetric adjacency (excluding the diagonal).
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for c in 0..n {
        for (r, _) in a.col_iter(c) {
            if r != c {
                adj[r].push(c);
                adj[c].push(r);
            }
        }
    }
    for list in adj.iter_mut() {
        list.sort_unstable();
        list.dedup();
    }
    let degree: Vec<usize> = adj.iter().map(|l| l.len()).collect();

    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut placed = vec![false; n];

    while order.len() < n {
        // Start the next component from a pseudo-peripheral vertex: take the
        // unplaced vertex of minimum degree, then run one BFS and restart
        // from the farthest vertex found.
        let start0 = (0..n)
            .filter(|&v| !placed[v])
            .min_by_key(|&v| degree[v])
            .expect("unplaced vertex exists");
        let start = farthest_vertex(&adj, start0, &placed);

        // Cuthill–McKee BFS with neighbors visited in increasing degree.
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(start);
        placed[start] = true;
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let mut nbrs: Vec<usize> = adj[v].iter().copied().filter(|&u| !placed[u]).collect();
            nbrs.sort_by_key(|&u| degree[u]);
            for u in nbrs {
                placed[u] = true;
                queue.push_back(u);
            }
        }
    }
    order.reverse();
    order
}

/// BFS helper: farthest vertex from `start` among unplaced vertices in the
/// same component (ties broken by lower degree, the usual GPS heuristic).
fn farthest_vertex(adj: &[Vec<usize>], start: usize, placed: &[bool]) -> usize {
    let n = adj.len();
    let mut dist = vec![usize::MAX; n];
    dist[start] = 0;
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(start);
    let mut best = start;
    while let Some(v) = queue.pop_front() {
        for &u in &adj[v] {
            if !placed[u] && dist[u] == usize::MAX {
                dist[u] = dist[v] + 1;
                queue.push_back(u);
                let better = dist[u] > dist[best]
                    || (dist[u] == dist[best] && adj[u].len() < adj[best].len());
                if better {
                    best = u;
                }
            }
        }
    }
    best
}

/// Compute a greedy minimum-degree ordering of a square sparse matrix's
/// symmetrized pattern.
///
/// At each step the vertex of smallest current degree is eliminated and its
/// neighbors are connected into a clique (the fill this elimination would
/// create). This is the textbook algorithm — no quotient-graph or
/// supervariable machinery — which is plenty for crosstalk clusters
/// (hundreds to a few thousand nodes).
///
/// Returns `perm` with `perm[new] = old`, suitable for
/// [`Csc::permute_sym`].
///
/// # Panics
///
/// Panics if the matrix is not square.
pub fn min_degree(a: &Csc) -> Vec<usize> {
    assert_eq!(a.nrows(), a.ncols(), "min_degree: square matrix required");
    let n = a.ncols();
    let mut adj: Vec<std::collections::BTreeSet<usize>> =
        vec![std::collections::BTreeSet::new(); n];
    for c in 0..n {
        for (r, _) in a.col_iter(c) {
            if r != c {
                adj[r].insert(c);
                adj[c].insert(r);
            }
        }
    }
    let mut eliminated = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        // Pick the unplaced vertex of minimum current degree.
        let v = (0..n)
            .filter(|&v| !eliminated[v])
            .min_by_key(|&v| adj[v].len())
            .expect("vertices remain");
        eliminated[v] = true;
        order.push(v);
        // Clique the neighbors, then detach v.
        let nbrs: Vec<usize> = adj[v].iter().copied().collect();
        for (i, &x) in nbrs.iter().enumerate() {
            adj[x].remove(&v);
            for &y in &nbrs[i + 1..] {
                adj[x].insert(y);
                adj[y].insert(x);
            }
        }
        adj[v].clear();
    }
    order
}

/// Profile (sum of per-row bandwidths) of a square matrix's symmetrized
/// pattern — a simple fill proxy for evaluating orderings.
///
/// # Panics
///
/// Panics if the matrix is not square.
pub fn profile(a: &Csc) -> usize {
    assert_eq!(a.nrows(), a.ncols(), "profile: square matrix required");
    let n = a.ncols();
    let mut first = (0..n).collect::<Vec<usize>>();
    for c in 0..n {
        for (r, _) in a.col_iter(c) {
            let (lo, hi) = if r < c { (r, c) } else { (c, r) };
            if lo < first[hi] {
                first[hi] = lo;
            }
        }
    }
    (0..n).map(|i| i - first[i]).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::Triplets;

    fn is_permutation(p: &[usize]) -> bool {
        let mut seen = vec![false; p.len()];
        for &v in p {
            if v >= p.len() || seen[v] {
                return false;
            }
            seen[v] = true;
        }
        true
    }

    #[test]
    fn rcm_returns_valid_permutation() {
        let mut t = Triplets::new(5, 5);
        for i in 0..5 {
            t.push(i, i, 1.0);
        }
        t.push(0, 4, 1.0);
        t.push(4, 0, 1.0);
        t.push(1, 3, 1.0);
        t.push(3, 1, 1.0);
        let p = rcm(&t.to_csc());
        assert!(is_permutation(&p));
    }

    #[test]
    fn rcm_reduces_profile_of_scrambled_chain() {
        // A path graph labeled badly: 0-2-4-1-3 chain.
        let edges = [(0usize, 2usize), (2, 4), (4, 1), (1, 3)];
        let mut t = Triplets::new(5, 5);
        for i in 0..5 {
            t.push(i, i, 2.0);
        }
        for &(u, v) in &edges {
            t.push(u, v, -1.0);
            t.push(v, u, -1.0);
        }
        let a = t.to_csc();
        let before = profile(&a);
        let p = rcm(&a);
        let after = profile(&a.permute_sym(&p));
        assert!(after <= before, "profile {after} should not exceed {before}");
        // For a path, the optimal profile is n-1 = 4.
        assert_eq!(after, 4);
    }

    #[test]
    fn rcm_handles_disconnected_components() {
        let mut t = Triplets::new(6, 6);
        for i in 0..6 {
            t.push(i, i, 1.0);
        }
        t.push(0, 1, 1.0);
        t.push(1, 0, 1.0);
        t.push(3, 4, 1.0);
        t.push(4, 3, 1.0);
        let p = rcm(&t.to_csc());
        assert!(is_permutation(&p));
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn rcm_on_empty_and_diagonal() {
        let p0 = rcm(&crate::sparse::Csc::zeros(0, 0));
        assert!(p0.is_empty());
        let p = rcm(&crate::sparse::Csc::identity(4));
        assert!(is_permutation(&p));
    }

    #[test]
    fn min_degree_is_valid_permutation() {
        let mut t = Triplets::new(6, 6);
        for i in 0..6 {
            t.push(i, i, 1.0);
        }
        t.push(0, 5, 1.0);
        t.push(5, 0, 1.0);
        t.push(2, 3, 1.0);
        t.push(3, 2, 1.0);
        let p = min_degree(&t.to_csc());
        assert!(is_permutation(&p));
    }

    #[test]
    fn min_degree_defers_the_hub_of_a_star() {
        // Star graph: center 0 connected to all others. Natural order
        // eliminates the hub first (full fill); min-degree leaves it last.
        let n = 8;
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.0 + i as f64);
        }
        for i in 1..n {
            t.push(0, i, -0.1);
            t.push(i, 0, -0.1);
        }
        let a = t.to_csc();
        let p = min_degree(&a);
        assert!(is_permutation(&p));
        let hub_pos = p.iter().position(|&v| v == 0).unwrap();
        assert!(hub_pos >= n - 2, "hub eliminated at the end: {p:?}");

        // And the resulting Cholesky factor is sparser than natural order
        // would suggest for the reversed star.
        let ap = a.permute_sym(&p);
        let chol = crate::chol::SparseCholesky::factor(&ap).unwrap();
        // Leaves first: no fill at all — nnz(L) = diagonal + star edges.
        assert_eq!(chol.nnz(), n + (n - 1));
    }

    #[test]
    fn min_degree_on_chain_keeps_linear_fill() {
        let n = 12;
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.0);
            if i + 1 < n {
                t.push(i, i + 1, -1.0);
                t.push(i + 1, i, -1.0);
            }
        }
        let a = t.to_csc();
        let p = min_degree(&a);
        let ap = a.permute_sym(&p);
        let chol = crate::chol::SparseCholesky::factor(&ap).unwrap();
        // A tree never fills under a perfect elimination order; greedy
        // min-degree on a path achieves ≤ n-1 off-diagonals plus diagonal.
        assert!(chol.nnz() < 2 * n, "nnz {}", chol.nnz());
    }

    #[test]
    fn profile_of_dense_band() {
        let mut t = Triplets::new(4, 4);
        for i in 0..4 {
            t.push(i, i, 1.0);
        }
        t.push(3, 0, 1.0);
        let a = t.to_csc();
        assert_eq!(profile(&a), 3);
    }
}
