//! Row-major dense matrices with the factorizations needed by reduced-order
//! models: LU with partial pivoting and Householder QR.
//!
//! Reduced models produced by SyMPVL are small (tens of states), so a simple,
//! cache-friendly dense kernel is both sufficient and easy to verify.

use crate::error::Error;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A row-major dense matrix of `f64`.
///
/// # Example
///
/// ```
/// # use pcv_sparse::Dense;
/// let a = Dense::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// assert_eq!(a[(1, 0)], 3.0);
/// assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dense {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl Dense {
    /// Create an `nrows x ncols` matrix of zeros.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Dense { nrows, ncols, data: vec![0.0; nrows * ncols] }
    }

    /// Create the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Dense::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Create a matrix by evaluating `f(row, col)` at every entry.
    pub fn from_fn(nrows: usize, ncols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Dense::zeros(nrows, ncols);
        for r in 0..nrows {
            for c in 0..ncols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Create a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut m = Dense::zeros(nrows, ncols);
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), ncols, "from_rows: ragged rows");
            m.row_mut(r).copy_from_slice(row);
        }
        m
    }

    /// Create a square diagonal matrix from its diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Dense::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// A view of row `r`.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.ncols..(r + 1) * self.ncols]
    }

    /// A mutable view of row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.ncols..(r + 1) * self.ncols]
    }

    /// Copy of column `c`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.nrows).map(|r| self[(r, c)]).collect()
    }

    /// Set column `c` from a slice.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != nrows`.
    pub fn set_col(&mut self, c: usize, v: &[f64]) {
        assert_eq!(v.len(), self.nrows, "set_col: length mismatch");
        for (r, &val) in v.iter().enumerate() {
            self[(r, c)] = val;
        }
    }

    /// The transpose as a new matrix.
    pub fn transpose(&self) -> Dense {
        Dense::from_fn(self.ncols, self.nrows, |r, c| self[(c, r)])
    }

    /// Matrix–vector product `A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "matvec: length mismatch");
        (0..self.nrows).map(|r| self.row(r).iter().zip(x).map(|(a, b)| a * b).sum()).collect()
    }

    /// Transposed matrix–vector product `Aᵀ x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != nrows`.
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.nrows, "matvec_t: length mismatch");
        let mut y = vec![0.0; self.ncols];
        for r in 0..self.nrows {
            let xr = x[r];
            for (c, yc) in y.iter_mut().enumerate() {
                *yc += self[(r, c)] * xr;
            }
        }
        y
    }

    /// Matrix product `A B`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if inner dimensions disagree.
    pub fn matmul(&self, b: &Dense) -> Result<Dense, Error> {
        if self.ncols != b.nrows {
            return Err(Error::DimensionMismatch {
                op: "matmul",
                expected: (self.ncols, b.ncols),
                found: (b.nrows, b.ncols),
            });
        }
        let mut out = Dense::zeros(self.nrows, b.ncols);
        for r in 0..self.nrows {
            for k in 0..self.ncols {
                let aik = self[(r, k)];
                if aik == 0.0 {
                    continue;
                }
                for c in 0..b.ncols {
                    out[(r, c)] += aik * b[(k, c)];
                }
            }
        }
        Ok(out)
    }

    /// Frobenius norm.
    pub fn norm_frobenius(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Largest absolute entry.
    pub fn norm_max(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// Symmetrize in place: `A ← (A + Aᵀ)/2`. Useful to remove rounding
    /// asymmetry before an eigendecomposition.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn symmetrize(&mut self) {
        assert_eq!(self.nrows, self.ncols, "symmetrize: square required");
        for r in 0..self.nrows {
            for c in (r + 1)..self.ncols {
                let avg = 0.5 * (self[(r, c)] + self[(c, r)]);
                self[(r, c)] = avg;
                self[(c, r)] = avg;
            }
        }
    }

    /// LU-factorize (with partial pivoting) and solve `A x = b` for a single
    /// right-hand side.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotSquare`], [`Error::DimensionMismatch`] or
    /// [`Error::Singular`].
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, Error> {
        let lu = DenseLu::factor(self.clone())?;
        if b.len() != lu.n {
            return Err(Error::DimensionMismatch {
                op: "solve",
                expected: (lu.n, 1),
                found: (b.len(), 1),
            });
        }
        Ok(lu.solve(b))
    }
}

impl Index<(usize, usize)> for Dense {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.nrows && c < self.ncols);
        &self.data[r * self.ncols + c]
    }
}

impl IndexMut<(usize, usize)> for Dense {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.nrows && c < self.ncols);
        &mut self.data[r * self.ncols + c]
    }
}

impl fmt::Display for Dense {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.nrows {
            for c in 0..self.ncols {
                write!(f, "{:>12.4e} ", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// An LU factorization with partial pivoting of a square dense matrix.
///
/// # Example
///
/// ```
/// # use pcv_sparse::dense::{Dense, DenseLu};
/// # fn main() -> Result<(), pcv_sparse::Error> {
/// let a = Dense::from_rows(&[&[0.0, 2.0], &[3.0, 1.0]]);
/// let lu = DenseLu::factor(a)?;
/// let x = lu.solve(&[2.0, 4.0]);
/// assert!((x[0] - 1.0).abs() < 1e-14 && (x[1] - 1.0).abs() < 1e-14);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DenseLu {
    n: usize,
    /// Combined L (unit lower, below diagonal) and U (upper) factors.
    lu: Dense,
    /// Row permutation: `perm[k]` is the original row in pivot position `k`.
    perm: Vec<usize>,
}

impl DenseLu {
    /// Factor a square matrix, consuming it.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotSquare`] if the matrix is rectangular, or
    /// [`Error::Singular`] if no usable pivot exists in some column.
    pub fn factor(mut a: Dense) -> Result<Self, Error> {
        if a.nrows != a.ncols {
            return Err(Error::NotSquare { nrows: a.nrows, ncols: a.ncols });
        }
        let n = a.nrows;
        let mut perm: Vec<usize> = (0..n).collect();
        for k in 0..n {
            // Partial pivoting: pick the largest entry on or below diagonal.
            let mut piv_row = k;
            let mut piv_val = a[(k, k)].abs();
            for r in (k + 1)..n {
                let v = a[(r, k)].abs();
                if v > piv_val {
                    piv_val = v;
                    piv_row = r;
                }
            }
            if piv_val == 0.0 {
                return Err(Error::Singular { col: k });
            }
            if piv_row != k {
                perm.swap(k, piv_row);
                for c in 0..n {
                    let tmp = a[(k, c)];
                    a[(k, c)] = a[(piv_row, c)];
                    a[(piv_row, c)] = tmp;
                }
            }
            let pivot = a[(k, k)];
            for r in (k + 1)..n {
                let m = a[(r, k)] / pivot;
                a[(r, k)] = m;
                if m != 0.0 {
                    for c in (k + 1)..n {
                        let upd = m * a[(k, c)];
                        a[(r, c)] -= upd;
                    }
                }
            }
        }
        Ok(DenseLu { n, lu: a, perm })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Solve `A x = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the factored dimension.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n, "solve: length mismatch");
        // Apply permutation, then forward/backward substitution.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for r in 1..self.n {
            let mut sum = x[r];
            for (c, &xc) in x.iter().enumerate().take(r) {
                sum -= self.lu[(r, c)] * xc;
            }
            x[r] = sum;
        }
        for r in (0..self.n).rev() {
            let mut sum = x[r];
            for (c, &xc) in x.iter().enumerate().skip(r + 1) {
                sum -= self.lu[(r, c)] * xc;
            }
            x[r] = sum / self.lu[(r, r)];
        }
        x
    }

    /// Determinant of the factored matrix (product of pivots with sign).
    pub fn det(&self) -> f64 {
        // Count permutation parity.
        let mut seen = vec![false; self.n];
        let mut swaps = 0usize;
        for start in 0..self.n {
            if seen[start] {
                continue;
            }
            let mut len = 0usize;
            let mut j = start;
            while !seen[j] {
                seen[j] = true;
                j = self.perm[j];
                len += 1;
            }
            swaps += len - 1;
        }
        let sign = if swaps.is_multiple_of(2) { 1.0 } else { -1.0 };
        sign * (0..self.n).map(|k| self.lu[(k, k)]).product::<f64>()
    }
}

/// A dense Cholesky factorization `A = L Lᵀ` of a small SPD matrix, used to
/// re-symmetrize PRIMA-projected pencils.
///
/// # Example
///
/// ```
/// # use pcv_sparse::dense::{Dense, DenseCholesky};
/// # fn main() -> Result<(), pcv_sparse::Error> {
/// let a = Dense::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
/// let chol = DenseCholesky::factor(&a)?;
/// let x = chol.solve(&[8.0, 7.0]);
/// assert!((x[0] - 1.25).abs() < 1e-12 && (x[1] - 1.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DenseCholesky {
    n: usize,
    /// Lower-triangular factor (upper part zeroed).
    l: Dense,
}

impl DenseCholesky {
    /// Factor a symmetric positive definite matrix.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotSquare`] or [`Error::NotPositiveDefinite`].
    pub fn factor(a: &Dense) -> Result<Self, Error> {
        if a.nrows() != a.ncols() {
            return Err(Error::NotSquare { nrows: a.nrows(), ncols: a.ncols() });
        }
        let n = a.nrows();
        let mut l = Dense::zeros(n, n);
        for j in 0..n {
            let mut d = a[(j, j)];
            for k in 0..j {
                d -= l[(j, k)] * l[(j, k)];
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(Error::NotPositiveDefinite { col: j, pivot: d });
            }
            let ljj = d.sqrt();
            l[(j, j)] = ljj;
            for i in (j + 1)..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / ljj;
            }
        }
        Ok(DenseCholesky { n, l })
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// The lower-triangular factor.
    pub fn l(&self) -> &Dense {
        &self.l
    }

    /// Solve `A x = b`.
    ///
    /// # Panics
    ///
    /// Panics on a length mismatch.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        self.solve_lower_in_place(&mut x);
        self.solve_lower_t_in_place(&mut x);
        x
    }

    /// Forward substitution `L y = b` in place.
    ///
    /// # Panics
    ///
    /// Panics on a length mismatch.
    pub fn solve_lower_in_place(&self, x: &mut [f64]) {
        assert_eq!(x.len(), self.n, "solve_lower: length mismatch");
        for i in 0..self.n {
            let mut s = x[i];
            for (k, &xk) in x.iter().enumerate().take(i) {
                s -= self.l[(i, k)] * xk;
            }
            x[i] = s / self.l[(i, i)];
        }
    }

    /// Backward substitution `Lᵀ x = b` in place.
    ///
    /// # Panics
    ///
    /// Panics on a length mismatch.
    pub fn solve_lower_t_in_place(&self, x: &mut [f64]) {
        assert_eq!(x.len(), self.n, "solve_lower_t: length mismatch");
        for i in (0..self.n).rev() {
            let mut s = x[i];
            for (k, &xk) in x.iter().enumerate().skip(i + 1) {
                s -= self.l[(k, i)] * xk;
            }
            x[i] = s / self.l[(i, i)];
        }
    }
}

/// A thin Householder QR factorization (`A = Q R` with `Q` having orthonormal
/// columns), used to orthonormalize Lanczos blocks.
#[derive(Debug, Clone)]
pub struct DenseQr {
    /// Orthonormal basis of the column space (`m x k`, `k = rank cols kept`).
    pub q: Dense,
    /// Upper-triangular factor (`k x n`).
    pub r: Dense,
}

impl DenseQr {
    /// Factor an `m x n` matrix with `m >= n` using modified Gram–Schmidt
    /// with one reorthogonalization pass (numerically robust for the small,
    /// well-conditioned blocks that arise in block Lanczos).
    ///
    /// Columns whose residual norm falls below `tol * original_norm` are
    /// replaced by zero columns in `Q` and flagged by a zero diagonal in `R`;
    /// callers detect block breakdown through [`DenseQr::rank`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `m < n`.
    pub fn factor(a: &Dense, tol: f64) -> Result<Self, Error> {
        let (m, n) = (a.nrows, a.ncols);
        if m < n {
            return Err(Error::DimensionMismatch {
                op: "qr (m >= n required)",
                expected: (n, n),
                found: (m, n),
            });
        }
        let mut q = a.clone();
        let mut r = Dense::zeros(n, n);
        for j in 0..n {
            let mut v = q.col(j);
            let orig_norm = crate::vecops::norm2(&v);
            // Two passes of Gram–Schmidt against previous columns.
            for _pass in 0..2 {
                for i in 0..j {
                    let qi = q.col(i);
                    let proj = crate::vecops::dot(&qi, &v);
                    r[(i, j)] += proj;
                    crate::vecops::axpy(-proj, &qi, &mut v);
                }
            }
            let nrm = crate::vecops::norm2(&v);
            if nrm <= tol * orig_norm.max(1e-300) {
                // Deflated (linearly dependent) column.
                r[(j, j)] = 0.0;
                q.set_col(j, &vec![0.0; m]);
            } else {
                r[(j, j)] = nrm;
                crate::vecops::scale(1.0 / nrm, &mut v);
                q.set_col(j, &v);
            }
        }
        Ok(DenseQr { q, r })
    }

    /// Number of independent columns found (non-zero diagonal entries of R).
    pub fn rank(&self) -> usize {
        (0..self.r.ncols()).filter(|&j| self.r[(j, j)] != 0.0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn constructors_and_indexing() {
        let a = Dense::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.nrows(), 2);
        assert_eq!(a.ncols(), 2);
        assert_eq!(a[(0, 1)], 2.0);
        assert_eq!(Dense::identity(3)[(2, 2)], 1.0);
        assert_eq!(Dense::from_diag(&[5.0, 6.0])[(1, 1)], 6.0);
        assert_eq!(Dense::from_fn(2, 2, |r, c| (r + c) as f64)[(1, 1)], 2.0);
    }

    #[test]
    fn transpose_and_products() {
        let a = Dense::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let at = a.transpose();
        assert_eq!(at.nrows(), 3);
        assert_eq!(at[(2, 1)], 6.0);
        assert_eq!(a.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
        assert_eq!(a.matvec_t(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
        let aat = a.matmul(&at).unwrap();
        assert_eq!(aat[(0, 0)], 14.0);
        assert_eq!(aat[(1, 0)], 32.0);
    }

    #[test]
    fn matmul_rejects_bad_dims() {
        let a = Dense::zeros(2, 3);
        let b = Dense::zeros(2, 3);
        assert!(matches!(a.matmul(&b), Err(Error::DimensionMismatch { .. })));
    }

    #[test]
    fn lu_solves_random_system() {
        let a = Dense::from_rows(&[&[2.0, 1.0, 1.0], &[4.0, -6.0, 0.0], &[-2.0, 7.0, 2.0]]);
        let xref = [1.0, -2.0, 3.0];
        let b = a.matvec(&xref);
        let x = a.solve(&b).unwrap();
        for (xi, ri) in x.iter().zip(&xref) {
            assert_close(*xi, *ri, 1e-12);
        }
    }

    #[test]
    fn lu_pivots_on_zero_diagonal() {
        let a = Dense::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert_close(x[0], 3.0, 1e-15);
        assert_close(x[1], 2.0, 1e-15);
    }

    #[test]
    fn lu_detects_singularity() {
        let a = Dense::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(a.solve(&[1.0, 1.0]), Err(Error::Singular { .. })));
    }

    #[test]
    fn lu_det_tracks_sign() {
        let a = Dense::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = DenseLu::factor(a).unwrap();
        assert_close(lu.det(), -1.0, 1e-15);
        let b = Dense::from_rows(&[&[3.0, 0.0], &[0.0, 2.0]]);
        assert_close(DenseLu::factor(b).unwrap().det(), 6.0, 1e-15);
    }

    #[test]
    fn qr_orthonormalizes() {
        let a = Dense::from_rows(&[&[1.0, 1.0], &[1.0, 0.0], &[0.0, 1.0]]);
        let qr = DenseQr::factor(&a, 1e-12).unwrap();
        assert_eq!(qr.rank(), 2);
        // QᵀQ = I
        let qtq = qr.q.transpose().matmul(&qr.q).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert_close(qtq[(i, j)], if i == j { 1.0 } else { 0.0 }, 1e-12);
            }
        }
        // QR = A
        let qr_prod = qr.q.matmul(&qr.r).unwrap();
        for r in 0..3 {
            for c in 0..2 {
                assert_close(qr_prod[(r, c)], a[(r, c)], 1e-12);
            }
        }
    }

    #[test]
    fn qr_flags_dependent_columns() {
        let a = Dense::from_rows(&[&[1.0, 2.0], &[1.0, 2.0], &[1.0, 2.0]]);
        let qr = DenseQr::factor(&a, 1e-10).unwrap();
        assert_eq!(qr.rank(), 1);
        assert_eq!(qr.r[(1, 1)], 0.0);
    }

    #[test]
    fn symmetrize_averages() {
        let mut a = Dense::from_rows(&[&[1.0, 2.0], &[4.0, 3.0]]);
        a.symmetrize();
        assert_eq!(a[(0, 1)], 3.0);
        assert_eq!(a[(1, 0)], 3.0);
    }

    #[test]
    fn dense_cholesky_reconstructs_and_solves() {
        let a = Dense::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, -0.2], &[0.5, -0.2, 2.0]]);
        let chol = DenseCholesky::factor(&a).unwrap();
        let l = chol.l();
        let llt = l.matmul(&l.transpose()).unwrap();
        for r in 0..3 {
            for c in 0..3 {
                assert_close(llt[(r, c)], a[(r, c)], 1e-12);
            }
        }
        let xref = [1.0, -2.0, 0.5];
        let b = a.matvec(&xref);
        let x = chol.solve(&b);
        for (xi, ri) in x.iter().zip(&xref) {
            assert_close(*xi, *ri, 1e-12);
        }
        assert_eq!(chol.dim(), 3);
        // Triangular halves invert each other.
        let mut v = vec![1.0, 2.0, 3.0];
        let orig = v.clone();
        let fwd = l.matvec(&v);
        v.copy_from_slice(&fwd);
        chol.solve_lower_in_place(&mut v);
        for (vi, oi) in v.iter().zip(&orig) {
            assert_close(*vi, *oi, 1e-12);
        }
    }

    #[test]
    fn dense_cholesky_rejects_indefinite() {
        let a = Dense::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert!(matches!(DenseCholesky::factor(&a), Err(Error::NotPositiveDefinite { .. })));
        assert!(matches!(DenseCholesky::factor(&Dense::zeros(2, 3)), Err(Error::NotSquare { .. })));
    }

    #[test]
    fn display_is_nonempty() {
        let a = Dense::zeros(1, 1);
        assert!(!format!("{a}").is_empty());
        assert!(!format!("{a:?}").is_empty());
    }
}
