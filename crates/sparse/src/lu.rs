//! Sparse LU factorization with partial pivoting, in the left-looking
//! Gilbert–Peierls style.
//!
//! This is the linear-solve engine of the SPICE substrate: MNA Jacobians are
//! square, sparse and unsymmetric (once MOSFET stamps are included), so
//! Cholesky does not apply. Partial pivoting with a diagonal-preference
//! threshold keeps the factorization stable while limiting fill on the
//! diagonally dominant matrices circuit simulation produces.

use crate::error::Error;
use crate::sparse::Csc;

const NONE: usize = usize::MAX;

/// A sparse LU factorization `P A = L U`.
///
/// # Example
///
/// ```
/// # use pcv_sparse::{Triplets, SparseLu};
/// # fn main() -> Result<(), pcv_sparse::Error> {
/// let mut t = Triplets::new(2, 2);
/// t.push(0, 0, 0.0); t.push(0, 1, 2.0);
/// t.push(1, 0, 3.0); t.push(1, 1, 1.0);
/// let lu = SparseLu::factor(&t.to_csc(), 1e-3)?;
/// let x = lu.solve(&[2.0, 4.0]);
/// assert!((x[0] - 1.0).abs() < 1e-14 && (x[1] - 1.0).abs() < 1e-14);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SparseLu {
    n: usize,
    /// Unit lower-triangular factor (diagonal 1.0 stored first per column),
    /// with row indices in pivot order.
    l: Csc,
    /// Upper-triangular factor (diagonal stored last per column).
    u: Csc,
    /// `pinv[original_row] = pivot_position`.
    pinv: Vec<usize>,
}

/// Growable CSC-like accumulator used while building L and U.
struct ColBuilder {
    colptr: Vec<usize>,
    rowidx: Vec<usize>,
    values: Vec<f64>,
}

impl ColBuilder {
    fn new(n: usize) -> Self {
        ColBuilder { colptr: Vec::with_capacity(n + 1), rowidx: Vec::new(), values: Vec::new() }
    }
}

impl SparseLu {
    /// Factor a square sparse matrix.
    ///
    /// `diag_threshold` controls diagonal-preference pivoting: the diagonal
    /// entry is chosen as pivot whenever its magnitude is at least
    /// `diag_threshold` times the largest candidate. Use `1.0` for strict
    /// partial pivoting, smaller values (e.g. `1e-3`) to prefer sparsity on
    /// diagonally dominant systems.
    ///
    /// # Errors
    ///
    /// * [`Error::NotSquare`] for rectangular input.
    /// * [`Error::Singular`] if a column has no usable pivot.
    pub fn factor(a: &Csc, diag_threshold: f64) -> Result<Self, Error> {
        if a.nrows() != a.ncols() {
            return Err(Error::NotSquare { nrows: a.nrows(), ncols: a.ncols() });
        }
        let _span = pcv_trace::span("sparse", "lu_factor");
        pcv_trace::count("sparse.lu.factors", 1);
        pcv_trace::value("sparse.lu.dim", a.ncols() as u64);
        let n = a.ncols();
        let mut lb = ColBuilder::new(n);
        let mut ub = ColBuilder::new(n);
        let mut pinv = vec![NONE; n];

        // Workspaces for the sparse triangular solve.
        let mut x = vec![0.0f64; n];
        let mut visited = vec![false; n];
        let mut reach: Vec<usize> = Vec::with_capacity(n);
        let mut dfs_stack: Vec<(usize, usize)> = Vec::with_capacity(n);

        for k in 0..n {
            lb.colptr.push(lb.rowidx.len());
            ub.colptr.push(ub.rowidx.len());

            // ---- Symbolic: Reach of pattern(A(:,k)) through L's graph. ----
            reach.clear();
            for (r0, _) in a.col_iter(k) {
                if visited[r0] {
                    continue;
                }
                // Iterative DFS from r0; nodes are *original* row indices.
                dfs_stack.push((r0, 0));
                visited[r0] = true;
                while let Some(&mut (node, ref mut edge)) = dfs_stack.last_mut() {
                    let jcol = pinv[node];
                    let advanced = if jcol != NONE {
                        // Explore column jcol of L (skip unit diagonal slot 0).
                        let start = lb.colptr[jcol];
                        let end = if jcol + 1 < lb.colptr.len() {
                            lb.colptr[jcol + 1]
                        } else {
                            lb.rowidx.len()
                        };
                        let mut next = None;
                        let mut e = *edge;
                        while start + 1 + e < end {
                            let child = lb.rowidx[start + 1 + e];
                            e += 1;
                            if !visited[child] {
                                next = Some(child);
                                break;
                            }
                        }
                        *edge = e;
                        next
                    } else {
                        None
                    };
                    match advanced {
                        Some(child) => {
                            visited[child] = true;
                            dfs_stack.push((child, 0));
                        }
                        None => {
                            dfs_stack.pop();
                            reach.push(node);
                        }
                    }
                }
            }
            // `reach` is in reverse topological order (postorder); the
            // numeric solve needs topological order, i.e. reversed postorder.
            reach.reverse();

            // ---- Numeric: x = L \ A(:,k) on the reach set. ----
            for &r in &reach {
                x[r] = 0.0;
            }
            for (r, v) in a.col_iter(k) {
                x[r] = v;
            }
            for &node in &reach {
                let jcol = pinv[node];
                if jcol == NONE {
                    continue;
                }
                let xj = x[node];
                if xj == 0.0 {
                    continue;
                }
                let start = lb.colptr[jcol];
                let end =
                    if jcol + 1 < lb.colptr.len() { lb.colptr[jcol + 1] } else { lb.rowidx.len() };
                for p in (start + 1)..end {
                    x[lb.rowidx[p]] -= lb.values[p] * xj;
                }
            }

            // ---- Pivot selection over non-yet-pivotal rows. ----
            let mut piv_row = NONE;
            let mut piv_mag = 0.0f64;
            for &r in &reach {
                if pinv[r] == NONE {
                    let mag = x[r].abs();
                    if mag > piv_mag {
                        piv_mag = mag;
                        piv_row = r;
                    }
                }
            }
            if piv_row == NONE || piv_mag == 0.0 || !piv_mag.is_finite() {
                return Err(Error::Singular { col: k });
            }
            // Diagonal preference: keep A's row k as pivot when acceptable.
            if pinv[k] == NONE && x[k].abs() >= diag_threshold * piv_mag {
                piv_row = k;
            }
            let pivot = x[piv_row];
            pinv[piv_row] = k;

            // ---- Emit U column k (rows already pivotal) and L column k. ----
            // U rows are pivot positions; collect then sort for CSC validity.
            let mut ucol: Vec<(usize, f64)> = Vec::new();
            let mut lcol: Vec<(usize, f64)> = Vec::new();
            for &r in &reach {
                visited[r] = false; // clear marks for next column
                let pr = pinv[r];
                if r == piv_row {
                    continue;
                }
                if pr != NONE && pr < k {
                    ucol.push((pr, x[r]));
                } else {
                    let lv = x[r] / pivot;
                    if lv != 0.0 {
                        lcol.push((r, lv));
                    }
                }
                x[r] = 0.0;
            }
            x[piv_row] = 0.0;
            ucol.push((k, pivot)); // diagonal of U stored last after sort
            ucol.sort_unstable_by_key(|&(r, _)| r);
            for (r, v) in ucol {
                ub.rowidx.push(r);
                ub.values.push(v);
            }
            // L column: unit diagonal first (in pivot order, the diagonal of
            // column k is pivot position k), then remaining rows. Row indices
            // stay *original* during factorization and are remapped at the
            // end, once every row has a pivot position.
            lb.rowidx.push(piv_row);
            lb.values.push(1.0);
            for (r, v) in lcol {
                lb.rowidx.push(r);
                lb.values.push(v);
            }
        }
        lb.colptr.push(lb.rowidx.len());
        ub.colptr.push(ub.rowidx.len());

        // Remap L's row indices to pivot order and sort each column.
        for r in lb.rowidx.iter_mut() {
            *r = pinv[*r];
        }
        let mut l_tr = crate::sparse::Triplets::new(n, n);
        for c in 0..n {
            for p in lb.colptr[c]..lb.colptr[c + 1] {
                l_tr.push(lb.rowidx[p], c, lb.values[p]);
            }
        }
        let l = l_tr.to_csc();
        let u = Csc::from_parts(n, n, ub.colptr, ub.rowidx, ub.values);
        Ok(SparseLu { n, l, u, pinv })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of nonzeros in `L` plus `U`.
    pub fn nnz(&self) -> usize {
        self.l.nnz() + self.u.nnz()
    }

    /// Solve `A x = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the matrix dimension.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n, "solve: length mismatch");
        pcv_trace::count("sparse.lu.solves", 1);
        // x[pinv[r]] = b[r]  (apply row permutation)
        let mut x = vec![0.0; self.n];
        for (r, &br) in b.iter().enumerate() {
            x[self.pinv[r]] = br;
        }
        self.lsolve_in_place(&mut x);
        self.usolve_in_place(&mut x);
        x
    }

    /// Solve `A x = b`, rejecting non-finite solutions.
    ///
    /// Identical to [`solve`](Self::solve) except that a solution containing
    /// NaN or infinite entries is surfaced as [`Error::NonFinite`] instead of
    /// being returned, so ill-conditioned systems fail fast at the kernel
    /// boundary.
    ///
    /// # Errors
    ///
    /// [`Error::NonFinite`] if any solution component is NaN or infinite.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the matrix dimension.
    pub fn try_solve(&self, b: &[f64]) -> Result<Vec<f64>, Error> {
        let x = self.solve(b);
        crate::error::ensure_finite(&x, "lu solve")?;
        Ok(x)
    }

    fn lsolve_in_place(&self, x: &mut [f64]) {
        let (cp, ri, vv) = (self.l.colptr(), self.l.rowidx(), self.l.values());
        for j in 0..self.n {
            let xj = x[j]; // unit diagonal
            if xj == 0.0 {
                continue;
            }
            for p in cp[j]..cp[j + 1] {
                let r = ri[p];
                if r > j {
                    x[r] -= vv[p] * xj;
                }
            }
        }
    }

    fn usolve_in_place(&self, x: &mut [f64]) {
        let (cp, ri, vv) = (self.u.colptr(), self.u.rowidx(), self.u.values());
        for j in (0..self.n).rev() {
            // Diagonal is the last entry of column j (largest row index <= j).
            let last = cp[j + 1] - 1;
            debug_assert_eq!(ri[last], j, "u diagonal placement");
            let xj = x[j] / vv[last];
            x[j] = xj;
            if xj == 0.0 {
                continue;
            }
            for p in cp[j]..last {
                x[ri[p]] -= vv[p] * xj;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::Triplets;

    fn solve_and_check(a: &Csc, xref: &[f64], tol: f64) {
        let b = a.matvec(xref);
        let lu = SparseLu::factor(a, 1e-3).unwrap();
        let x = lu.solve(&b);
        for (xi, ri) in x.iter().zip(xref) {
            assert!((xi - ri).abs() < tol, "{xi} vs {ri}");
        }
    }

    #[test]
    fn identity_solve() {
        let a = Csc::identity(4);
        solve_and_check(&a, &[1.0, -2.0, 3.0, -4.0], 1e-15);
    }

    #[test]
    fn tridiagonal_solve() {
        let n = 40;
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.0 + (i % 3) as f64);
            if i + 1 < n {
                t.push(i, i + 1, -1.0);
                t.push(i + 1, i, -0.7);
            }
        }
        let a = t.to_csc();
        let xref: Vec<f64> = (0..n).map(|i| ((i * 7) % 11) as f64 - 5.0).collect();
        solve_and_check(&a, &xref, 1e-10);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // [0 2; 3 1] requires a row swap.
        let mut t = Triplets::new(2, 2);
        t.push(0, 1, 2.0);
        t.push(1, 0, 3.0);
        t.push(1, 1, 1.0);
        let a = t.to_csc();
        solve_and_check(&a, &[1.0, 1.0], 1e-14);
    }

    #[test]
    fn strict_partial_pivoting_threshold() {
        // With diag_threshold = 1.0, the largest entry is always chosen.
        let mut t = Triplets::new(3, 3);
        t.push(0, 0, 1e-12);
        t.push(1, 0, 1.0);
        t.push(0, 1, 1.0);
        t.push(2, 1, 2.0);
        t.push(1, 2, 3.0);
        t.push(2, 2, 4.0);
        t.push(0, 2, 0.5);
        let a = t.to_csc();
        let lu = SparseLu::factor(&a, 1.0).unwrap();
        let xref = [2.0, -1.0, 0.5];
        let b = a.matvec(&xref);
        let x = lu.solve(&b);
        for (xi, ri) in x.iter().zip(&xref) {
            assert!((xi - ri).abs() < 1e-10);
        }
    }

    #[test]
    fn dense_block_with_fill() {
        // A matrix whose factorization produces fill-in.
        let n = 10;
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, 4.0);
            t.push(i, (i + 3) % n, 1.0);
            t.push((i + 5) % n, i, -1.5);
        }
        let a = t.to_csc();
        let xref: Vec<f64> = (0..n).map(|i| (i as f64 * 0.77).cos()).collect();
        solve_and_check(&a, &xref, 1e-10);
    }

    #[test]
    fn detects_singular() {
        let mut t = Triplets::new(3, 3);
        t.push(0, 0, 1.0);
        t.push(1, 1, 1.0);
        // Column 2 entirely zero.
        t.push(0, 2, 0.0);
        let a = t.to_csc();
        assert!(matches!(SparseLu::factor(&a, 1e-3), Err(Error::Singular { col: 2 })));
    }

    #[test]
    fn detects_structurally_coupled_singularity() {
        // Rank-deficient: row 2 = row 0.
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 0, 1.0);
        t.push(0, 1, 2.0);
        t.push(1, 1, 2.0);
        let a = t.to_csc();
        assert!(SparseLu::factor(&a, 1e-3).is_err());
    }

    #[test]
    fn rejects_rectangular() {
        let a = Csc::zeros(2, 3);
        assert!(matches!(SparseLu::factor(&a, 1e-3), Err(Error::NotSquare { .. })));
    }

    #[test]
    fn unsymmetric_mna_like_system() {
        // A small MNA-like matrix: SPD conductance block plus asymmetric
        // source rows/cols (as produced by a voltage source stamp).
        let mut t = Triplets::new(4, 4);
        t.push(0, 0, 1.0 / 100.0);
        t.push(0, 1, -1.0 / 100.0);
        t.push(1, 0, -1.0 / 100.0);
        t.push(1, 1, 1.0 / 100.0 + 1.0 / 50.0);
        // Voltage source between node 0 and ground: branch current var 3.
        t.push(0, 3, 1.0);
        t.push(3, 0, 1.0);
        // Extra node 2 coupled to 1.
        t.push(2, 2, 1.0 / 10.0);
        t.push(1, 2, -0.001);
        t.push(2, 1, -0.002);
        let a = t.to_csc();
        let xref = [5.0, 2.5, 0.05, -0.025];
        solve_and_check(&a, &xref, 1e-9);
    }

    #[test]
    fn large_random_pattern_roundtrip() {
        // Deterministic scatter with guaranteed nonzero diagonal.
        let n = 120;
        let mut t = Triplets::new(n, n);
        let mut state = 12345u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for i in 0..n {
            t.push(i, i, 5.0 + (i % 7) as f64);
            for _ in 0..4 {
                let j = next() % n;
                let v = ((next() % 1000) as f64 / 1000.0) - 0.5;
                t.push(i, j, v);
            }
        }
        let a = t.to_csc();
        let xref: Vec<f64> = (0..n).map(|i| ((i * 13) % 17) as f64 / 17.0).collect();
        solve_and_check(&a, &xref, 1e-8);
    }
}
