//! Small vector helpers used throughout the workspace.

/// Dot product of two equally sized slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Euclidean norm of a slice.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Infinity norm (largest absolute entry) of a slice; `0.0` when empty.
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
}

/// `y += alpha * x`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Scale a slice in place: `x *= alpha`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Relative difference `|a - b| / max(|a|, |b|, floor)`, a robust metric for
/// comparing measured quantities (glitch peaks, delays) against a reference.
#[inline]
pub fn rel_diff(a: f64, b: f64, floor: f64) -> f64 {
    (a - b).abs() / a.abs().max(b.abs()).max(floor)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let x = [3.0, 4.0];
        assert_eq!(dot(&x, &x), 25.0);
        assert_eq!(norm2(&x), 5.0);
        assert_eq!(norm_inf(&x), 4.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut x = [1.0, -2.0];
        scale(-3.0, &mut x);
        assert_eq!(x, [-3.0, 6.0]);
    }

    #[test]
    fn rel_diff_is_symmetric_and_floored() {
        assert_eq!(rel_diff(1.0, 2.0, 1e-12), rel_diff(2.0, 1.0, 1e-12));
        assert_eq!(rel_diff(0.0, 0.0, 1.0), 0.0);
        assert!((rel_diff(1.0, 1.1, 1e-12) - 0.1 / 1.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_rejects_length_mismatch() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
