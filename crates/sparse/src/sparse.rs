//! Sparse matrix storage: coordinate-format assembly ([`Triplets`]) and
//! compressed sparse column matrices ([`Csc`]).
//!
//! MNA stamping naturally produces duplicate coordinate entries (each element
//! stamps into shared nodes); [`Triplets::to_csc`] sums duplicates, which is
//! exactly the assembly semantics circuit simulation needs.

use crate::dense::Dense;
use std::fmt;

/// A coordinate-format (COO) builder for sparse matrices.
///
/// Duplicate `(row, col)` entries are *summed* on conversion, matching MNA
/// stamp assembly semantics.
///
/// # Example
///
/// ```
/// # use pcv_sparse::Triplets;
/// let mut t = Triplets::new(2, 2);
/// t.push(0, 0, 1.0);
/// t.push(0, 0, 2.0); // duplicate: summed
/// let a = t.to_csc();
/// assert_eq!(a.get(0, 0), 3.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Triplets {
    nrows: usize,
    ncols: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
}

impl Triplets {
    /// Create an empty builder for an `nrows x ncols` matrix.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        Triplets { nrows, ncols, rows: Vec::new(), cols: Vec::new(), vals: Vec::new() }
    }

    /// Append an entry. Zero values are kept (they pin the sparsity pattern,
    /// which MNA reuse across Newton iterations relies on).
    ///
    /// # Panics
    ///
    /// Panics if `row`/`col` are out of bounds.
    pub fn push(&mut self, row: usize, col: usize, val: f64) {
        assert!(row < self.nrows && col < self.ncols, "triplet out of bounds");
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(val);
    }

    /// Number of raw (pre-dedup) entries.
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// `true` if no entries have been pushed.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// Number of rows of the target matrix.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns of the target matrix.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Assemble into compressed sparse column form, summing duplicates.
    pub fn to_csc(&self) -> Csc {
        // Count entries per column.
        let mut colptr = vec![0usize; self.ncols + 1];
        for &c in &self.cols {
            colptr[c + 1] += 1;
        }
        for c in 0..self.ncols {
            colptr[c + 1] += colptr[c];
        }
        // Scatter (unsorted within column for now).
        let mut rowidx = vec![0usize; self.vals.len()];
        let mut values = vec![0.0; self.vals.len()];
        let mut next = colptr.clone();
        for k in 0..self.vals.len() {
            let c = self.cols[k];
            let dst = next[c];
            rowidx[dst] = self.rows[k];
            values[dst] = self.vals[k];
            next[c] += 1;
        }
        let mut csc = Csc { nrows: self.nrows, ncols: self.ncols, colptr, rowidx, values };
        csc.sort_and_dedup();
        csc
    }
}

/// A compressed sparse column matrix.
///
/// Row indices within each column are sorted and unique.
#[derive(Debug, Clone, PartialEq)]
pub struct Csc {
    nrows: usize,
    ncols: usize,
    colptr: Vec<usize>,
    rowidx: Vec<usize>,
    values: Vec<f64>,
}

impl Csc {
    /// An `nrows x ncols` matrix with no stored entries.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Csc { nrows, ncols, colptr: vec![0; ncols + 1], rowidx: Vec::new(), values: Vec::new() }
    }

    /// The `n x n` identity.
    pub fn identity(n: usize) -> Self {
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, 1.0);
        }
        t.to_csc()
    }

    /// Build from raw CSC arrays.
    ///
    /// # Panics
    ///
    /// Panics if the arrays are inconsistent (wrong `colptr` length, unsorted
    /// or duplicate row indices, or out-of-range indices).
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        colptr: Vec<usize>,
        rowidx: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        assert_eq!(colptr.len(), ncols + 1, "colptr length");
        assert_eq!(rowidx.len(), values.len(), "rowidx/values length");
        assert_eq!(*colptr.last().unwrap(), rowidx.len(), "colptr terminator");
        for c in 0..ncols {
            assert!(colptr[c] <= colptr[c + 1], "colptr monotonicity");
            let mut prev: Option<usize> = None;
            for &r in &rowidx[colptr[c]..colptr[c + 1]] {
                assert!(r < nrows, "row index out of range");
                if let Some(p) = prev {
                    assert!(r > p, "row indices must be strictly increasing");
                }
                prev = Some(r);
            }
        }
        Csc { nrows, ncols, colptr, rowidx, values }
    }

    fn sort_and_dedup(&mut self) {
        let mut new_colptr = vec![0usize; self.ncols + 1];
        let mut new_rowidx = Vec::with_capacity(self.rowidx.len());
        let mut new_values = Vec::with_capacity(self.values.len());
        let mut buf: Vec<(usize, f64)> = Vec::new();
        for c in 0..self.ncols {
            buf.clear();
            for k in self.colptr[c]..self.colptr[c + 1] {
                buf.push((self.rowidx[k], self.values[k]));
            }
            buf.sort_unstable_by_key(|&(r, _)| r);
            let mut i = 0;
            while i < buf.len() {
                let r = buf[i].0;
                let mut v = buf[i].1;
                let mut j = i + 1;
                while j < buf.len() && buf[j].0 == r {
                    v += buf[j].1;
                    j += 1;
                }
                new_rowidx.push(r);
                new_values.push(v);
                i = j;
            }
            new_colptr[c + 1] = new_rowidx.len();
        }
        self.colptr = new_colptr;
        self.rowidx = new_rowidx;
        self.values = new_values;
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Column pointer array (length `ncols + 1`).
    pub fn colptr(&self) -> &[usize] {
        &self.colptr
    }

    /// Row index array.
    pub fn rowidx(&self) -> &[usize] {
        &self.rowidx
    }

    /// Stored values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable stored values (pattern-preserving numeric update).
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Entry at `(row, col)`, `0.0` if not stored.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        let range = self.colptr[col]..self.colptr[col + 1];
        match self.rowidx[range.clone()].binary_search(&row) {
            Ok(k) => self.values[range.start + k],
            Err(_) => 0.0,
        }
    }

    /// Iterate over the stored entries of a column as `(row, value)` pairs.
    pub fn col_iter(&self, col: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let range = self.colptr[col]..self.colptr[col + 1];
        self.rowidx[range.clone()].iter().copied().zip(self.values[range].iter().copied())
    }

    /// `y = A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "matvec: length mismatch");
        let mut y = vec![0.0; self.nrows];
        self.matvec_into(x, &mut y);
        y
    }

    /// `y = A x` into a caller-provided buffer (cleared first).
    ///
    /// # Panics
    ///
    /// Panics on length mismatches.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "matvec: x length");
        assert_eq!(y.len(), self.nrows, "matvec: y length");
        y.fill(0.0);
        for (c, &xc) in x.iter().enumerate() {
            if xc == 0.0 {
                continue;
            }
            for k in self.colptr[c]..self.colptr[c + 1] {
                y[self.rowidx[k]] += self.values[k] * xc;
            }
        }
    }

    /// `y = Aᵀ x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != nrows`.
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.nrows, "matvec_t: length mismatch");
        let mut y = vec![0.0; self.ncols];
        for (c, yc) in y.iter_mut().enumerate() {
            let mut sum = 0.0;
            for k in self.colptr[c]..self.colptr[c + 1] {
                sum += self.values[k] * x[self.rowidx[k]];
            }
            *yc = sum;
        }
        y
    }

    /// Transpose as a new matrix.
    pub fn transpose(&self) -> Csc {
        let mut t = Triplets::new(self.ncols, self.nrows);
        for c in 0..self.ncols {
            for (r, v) in self.col_iter(c) {
                t.push(c, r, v);
            }
        }
        t.to_csc()
    }

    /// Symmetric permutation `P A Pᵀ` where `perm[new] = old`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `perm` is not a permutation of
    /// `0..n`.
    pub fn permute_sym(&self, perm: &[usize]) -> Csc {
        assert_eq!(self.nrows, self.ncols, "permute_sym: square required");
        assert_eq!(perm.len(), self.nrows, "permute_sym: perm length");
        let mut inv = vec![usize::MAX; perm.len()];
        for (new, &old) in perm.iter().enumerate() {
            assert!(old < perm.len() && inv[old] == usize::MAX, "invalid permutation");
            inv[old] = new;
        }
        let mut t = Triplets::new(self.nrows, self.ncols);
        for c in 0..self.ncols {
            for (r, v) in self.col_iter(c) {
                t.push(inv[r], inv[c], v);
            }
        }
        t.to_csc()
    }

    /// Convert to a dense matrix (test/debug helper; intended for small
    /// matrices).
    pub fn to_dense(&self) -> Dense {
        let mut d = Dense::zeros(self.nrows, self.ncols);
        for c in 0..self.ncols {
            for (r, v) in self.col_iter(c) {
                d[(r, c)] = v;
            }
        }
        d
    }

    /// Check symmetry up to absolute tolerance `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        for c in 0..self.ncols {
            for (r, v) in self.col_iter(c) {
                if (v - self.get(c, r)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Sum of two matrices with identical shape: `A + alpha B`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_scaled(&self, alpha: f64, b: &Csc) -> Csc {
        assert_eq!((self.nrows, self.ncols), (b.nrows, b.ncols), "add_scaled shape");
        let mut t = Triplets::new(self.nrows, self.ncols);
        for c in 0..self.ncols {
            for (r, v) in self.col_iter(c) {
                t.push(r, c, v);
            }
            for (r, v) in b.col_iter(c) {
                t.push(r, c, alpha * v);
            }
        }
        t.to_csc()
    }
}

impl fmt::Display for Csc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}x{} sparse, {} nnz", self.nrows, self.ncols, self.nnz())?;
        for c in 0..self.ncols {
            for (r, v) in self.col_iter(c) {
                writeln!(f, "  ({r},{c}) = {v:e}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csc {
        // [1 0 2]
        // [0 3 0]
        // [4 0 5]
        let mut t = Triplets::new(3, 3);
        t.push(0, 0, 1.0);
        t.push(2, 0, 4.0);
        t.push(1, 1, 3.0);
        t.push(0, 2, 2.0);
        t.push(2, 2, 5.0);
        t.to_csc()
    }

    #[test]
    fn assembly_sums_duplicates() {
        let mut t = Triplets::new(2, 2);
        t.push(1, 1, 1.5);
        t.push(1, 1, 2.5);
        t.push(0, 1, -1.0);
        let a = t.to_csc();
        assert_eq!(a.nnz(), 2);
        assert_eq!(a.get(1, 1), 4.0);
        assert_eq!(a.get(0, 1), -1.0);
        assert_eq!(a.get(0, 0), 0.0);
    }

    #[test]
    fn rows_sorted_within_columns() {
        let mut t = Triplets::new(3, 1);
        t.push(2, 0, 1.0);
        t.push(0, 0, 2.0);
        t.push(1, 0, 3.0);
        let a = t.to_csc();
        assert_eq!(a.rowidx(), &[0, 1, 2]);
        assert_eq!(a.values(), &[2.0, 3.0, 1.0]);
    }

    #[test]
    fn matvec_matches_dense() {
        let a = sample();
        let x = [1.0, 2.0, 3.0];
        assert_eq!(a.matvec(&x), vec![7.0, 6.0, 19.0]);
        assert_eq!(a.matvec_t(&x), a.to_dense().matvec_t(&x));
    }

    #[test]
    fn transpose_round_trips() {
        let a = sample();
        let att = a.transpose().transpose();
        assert_eq!(a, att);
        assert_eq!(a.transpose().get(0, 2), 4.0);
    }

    #[test]
    fn permute_sym_relabels() {
        let a = sample();
        // perm[new] = old; swap nodes 0 and 2.
        let p = a.permute_sym(&[2, 1, 0]);
        assert_eq!(p.get(0, 0), 5.0);
        assert_eq!(p.get(2, 2), 1.0);
        assert_eq!(p.get(2, 0), 2.0);
    }

    #[test]
    fn symmetry_check() {
        let mut t = Triplets::new(2, 2);
        t.push(0, 1, 2.0);
        t.push(1, 0, 2.0);
        t.push(0, 0, 1.0);
        assert!(t.to_csc().is_symmetric(0.0));
        assert!(!sample().is_symmetric(1e-12));
    }

    #[test]
    fn add_scaled_combines_patterns() {
        let a = sample();
        let b = Csc::identity(3);
        let s = a.add_scaled(2.0, &b);
        assert_eq!(s.get(0, 0), 3.0);
        assert_eq!(s.get(1, 1), 5.0);
        assert_eq!(s.get(0, 2), 2.0);
    }

    #[test]
    fn from_parts_validates() {
        let a = Csc::from_parts(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 2.0]);
        assert_eq!(a.get(1, 1), 2.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_parts_rejects_unsorted() {
        Csc::from_parts(2, 1, vec![0, 2], vec![1, 0], vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn push_rejects_out_of_bounds() {
        let mut t = Triplets::new(1, 1);
        t.push(1, 0, 1.0);
    }

    #[test]
    fn zeros_and_identity() {
        let z = Csc::zeros(3, 4);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.matvec(&[1.0; 4]), vec![0.0; 3]);
        let i = Csc::identity(2);
        assert_eq!(i.matvec(&[5.0, 6.0]), vec![5.0, 6.0]);
    }

    #[test]
    fn values_mut_updates_in_place() {
        let mut a = sample();
        let nnz = a.nnz();
        for v in a.values_mut() {
            *v *= 2.0;
        }
        assert_eq!(a.nnz(), nnz);
        assert_eq!(a.get(2, 2), 10.0);
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", sample()).is_empty());
    }
}
