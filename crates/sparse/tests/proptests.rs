//! Randomized-property tests for the linear-algebra kernels: factorizations
//! must reproduce the matrices they factor and solves must invert matvecs,
//! for arbitrary well-conditioned inputs. Driven by the seeded internal
//! PRNG so the workspace builds offline.

use pcv_rng::Rng;
use pcv_sparse::chol::SparseCholesky;
use pcv_sparse::dense::{Dense, DenseLu, DenseQr};
use pcv_sparse::eig::jacobi_eigen;
use pcv_sparse::lu::SparseLu;
use pcv_sparse::order::rcm;
use pcv_sparse::sparse::Triplets;

/// A random sparse, strictly diagonally dominant matrix (hence nonsingular),
/// with the off-diagonal structure of a resistor network: this is the matrix
/// family MNA actually produces.
fn dd_matrix(n: usize, entries: Vec<(usize, usize, f64)>) -> pcv_sparse::Csc {
    let mut t = Triplets::new(n, n);
    let mut diag = vec![1.0; n]; // baseline keeps strict dominance
    for (r, c, v) in entries {
        let (r, c) = (r % n, c % n);
        if r == c {
            continue;
        }
        t.push(r, c, v);
        diag[r] += v.abs();
    }
    for (i, d) in diag.iter().enumerate() {
        t.push(i, i, *d);
    }
    t.to_csc()
}

/// Like `dd_matrix` but symmetric (SPD by Gershgorin).
fn spd_matrix(n: usize, entries: Vec<(usize, usize, f64)>) -> pcv_sparse::Csc {
    let mut t = Triplets::new(n, n);
    let mut diag = vec![1.0; n];
    for (r, c, v) in entries {
        let (r, c) = (r % n, c % n);
        if r == c {
            continue;
        }
        let v = -v.abs(); // resistor-like negative off-diagonals
        t.push(r, c, v);
        t.push(c, r, v);
        diag[r] += v.abs();
        diag[c] += v.abs();
    }
    for (i, d) in diag.iter().enumerate() {
        t.push(i, i, *d);
    }
    t.to_csc()
}

fn entries(rng: &mut Rng, n: usize) -> Vec<(usize, usize, f64)> {
    let count = rng.range_usize(0, (3 * n).max(1));
    (0..count)
        .map(|_| (rng.range_usize(0, n), rng.range_usize(0, n), rng.range_f64(-2.0, 2.0)))
        .collect()
}

#[test]
fn sparse_cholesky_solves_spd_systems() {
    let mut rng = Rng::new(0x59A171);
    for _ in 0..64 {
        let n = rng.range_usize(2, 30);
        let a = spd_matrix(n, entries(&mut rng, n));
        let seed = rng.range_usize(0, 1000) as u64;
        let xref: Vec<f64> = (0..n).map(|i| ((i as u64 + seed) as f64 * 0.613).sin()).collect();
        let b = a.matvec(&xref);
        let chol = SparseCholesky::factor(&a).unwrap();
        let x = chol.solve(&b);
        for (xi, ri) in x.iter().zip(&xref) {
            assert!((xi - ri).abs() < 1e-8, "{xi} vs {ri}");
        }
    }
}

#[test]
fn sparse_cholesky_reconstructs() {
    let mut rng = Rng::new(0x59A172);
    for _ in 0..64 {
        let n = rng.range_usize(2, 20);
        let a = spd_matrix(n, entries(&mut rng, n));
        let chol = SparseCholesky::factor(&a).unwrap();
        let l = chol.l().to_dense();
        let llt = l.matmul(&l.transpose()).unwrap();
        let ad = a.to_dense();
        for r in 0..n {
            for c in 0..n {
                assert!((llt[(r, c)] - ad[(r, c)]).abs() < 1e-9);
            }
        }
    }
}

#[test]
fn sparse_lu_solves_dd_systems() {
    let mut rng = Rng::new(0x59A173);
    for _ in 0..64 {
        let n = rng.range_usize(2, 30);
        let a = dd_matrix(n, entries(&mut rng, n));
        let seed = rng.range_usize(0, 1000) as u64;
        let xref: Vec<f64> = (0..n).map(|i| ((i as u64 * 3 + seed) as f64 * 0.217).cos()).collect();
        let b = a.matvec(&xref);
        let lu = SparseLu::factor(&a, 1e-3).unwrap();
        let x = lu.solve(&b);
        for (xi, ri) in x.iter().zip(&xref) {
            assert!((xi - ri).abs() < 1e-8, "{xi} vs {ri}");
        }
    }
}

#[test]
fn sparse_lu_agrees_with_dense_lu() {
    let mut rng = Rng::new(0x59A174);
    for _ in 0..64 {
        let n = rng.range_usize(2, 12);
        let a = dd_matrix(n, entries(&mut rng, n));
        let b: Vec<f64> = (0..n).map(|i| (i as f64) - 1.5).collect();
        let sparse = SparseLu::factor(&a, 1.0).unwrap().solve(&b);
        let dense = DenseLu::factor(a.to_dense()).unwrap().solve(&b);
        for (s, d) in sparse.iter().zip(&dense) {
            assert!((s - d).abs() < 1e-9);
        }
    }
}

#[test]
fn rcm_permutation_preserves_solution() {
    let mut rng = Rng::new(0x59A175);
    for _ in 0..64 {
        let n = rng.range_usize(2, 20);
        let a = spd_matrix(n, entries(&mut rng, n));
        let perm = rcm(&a);
        let ap = a.permute_sym(&perm);
        // Solve in permuted space and map back.
        let xref: Vec<f64> = (0..n).map(|i| (i as f64 * 0.31).sin()).collect();
        let b = a.matvec(&xref);
        let bp: Vec<f64> = perm.iter().map(|&old| b[old]).collect();
        let xp = SparseCholesky::factor(&ap).unwrap().solve(&bp);
        for (new, &old) in perm.iter().enumerate() {
            assert!((xp[new] - xref[old]).abs() < 1e-8);
        }
    }
}

#[test]
fn jacobi_eigenvalues_match_trace_and_are_real_sorted() {
    let mut rng = Rng::new(0x59A176);
    for _ in 0..64 {
        let n = rng.range_usize(1, 10);
        let raw: Vec<f64> = (0..100).map(|_| rng.range_f64(-3.0, 3.0)).collect();
        let mut a = Dense::from_fn(n, n, |r, c| raw[(r * n + c) % raw.len()]);
        a.symmetrize();
        let eig = jacobi_eigen(&a).unwrap();
        let trace: f64 = (0..n).map(|i| a[(i, i)]).sum();
        let sum: f64 = eig.values.iter().sum();
        assert!((trace - sum).abs() < 1e-9 * (1.0 + trace.abs()));
        for w in eig.values.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }
}

#[test]
fn qr_factor_reproduces_input() {
    let mut rng = Rng::new(0x59A177);
    let mut cases = 0;
    while cases < 64 {
        let m = rng.range_usize(2, 10);
        let n = rng.range_usize(1, 6);
        if m < n {
            continue;
        }
        cases += 1;
        let raw: Vec<f64> = (0..100).map(|_| rng.range_f64(-2.0, 2.0)).collect();
        let a = Dense::from_fn(m, n, |r, c| raw[(r * n + c) % raw.len()]);
        let qr = DenseQr::factor(&a, 1e-10).unwrap();
        let prod = qr.q.matmul(&qr.r).unwrap();
        for r in 0..m {
            for c in 0..n {
                assert!((prod[(r, c)] - a[(r, c)]).abs() < 1e-9);
            }
        }
    }
}

#[test]
fn triplet_assembly_matches_dense_accumulation() {
    let mut rng = Rng::new(0x59A178);
    for _ in 0..64 {
        let n = rng.range_usize(1, 8);
        let count = rng.range_usize(0, 40);
        let mut t = Triplets::new(n, n);
        let mut dense = Dense::zeros(n, n);
        for _ in 0..count {
            let r = rng.range_usize(0, n);
            let c = rng.range_usize(0, n);
            let v = rng.range_f64(-5.0, 5.0);
            t.push(r, c, v);
            dense[(r, c)] += v;
        }
        let a = t.to_csc();
        for r in 0..n {
            for c in 0..n {
                assert!((a.get(r, c) - dense[(r, c)]).abs() < 1e-12);
            }
        }
    }
}
