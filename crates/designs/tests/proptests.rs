//! Randomized-property tests of extraction invariants: conservation of
//! totals under segmentation, coupling symmetry, and generator robustness.
//!
//! Each test sweeps a seeded [`pcv_rng::Rng`] stream instead of an external
//! property-testing framework so the workspace builds offline; the fixed
//! seeds make every case reproducible.

use pcv_designs::extract::{extract, fold_grounded_nets, WireGeom};
use pcv_designs::random::{random_cluster, RandomClusterConfig};
use pcv_designs::Technology;
use pcv_rng::Rng;

#[test]
fn totals_are_segmentation_invariant() {
    let t = Technology::c025();
    let mut rng = Rng::new(0xD5161);
    for _ in 0..32 {
        let len_um = rng.range_f64(20.0, 3000.0);
        let seg_a_um = rng.range_f64(5.0, 60.0);
        let seg_b_um = rng.range_f64(5.0, 60.0);
        let wire = || WireGeom::min_width("w", 0, 0.0, len_um * 1e-6, &t);
        let a = extract(&[wire()], &t, seg_a_um * 1e-6);
        let b = extract(&[wire()], &t, seg_b_um * 1e-6);
        let na = a.find_net("w").unwrap();
        let nb = b.find_net("w").unwrap();
        let ra = a.net(na).total_resistance();
        let rb = b.net(nb).total_resistance();
        assert!((ra - rb).abs() <= 1e-9 * ra, "total R invariant: {ra} vs {rb}");
        let ca = a.net(na).total_ground_cap();
        let cb = b.net(nb).total_ground_cap();
        assert!((ca - cb).abs() <= 1e-9 * ca, "total C invariant: {ca} vs {cb}");
    }
}

#[test]
fn coupling_total_is_segmentation_invariant() {
    let t = Technology::c025();
    let mut rng = Rng::new(0xD5162);
    for _ in 0..32 {
        let len_um = rng.range_f64(50.0, 2000.0);
        let seg_a_um = rng.range_f64(5.0, 50.0);
        let seg_b_um = rng.range_f64(5.0, 50.0);
        let mk = |seg: f64| {
            let wires = vec![
                WireGeom::min_width("a", 0, 0.0, len_um * 1e-6, &t),
                WireGeom::min_width("b", 1, 0.0, len_um * 1e-6, &t),
            ];
            extract(&wires, &t, seg * 1e-6)
        };
        let da = mk(seg_a_um);
        let db = mk(seg_b_um);
        let ca = da.total_coupling_cap(da.find_net("a").unwrap());
        let cb = db.total_coupling_cap(db.find_net("a").unwrap());
        assert!((ca - cb).abs() <= 1e-9 * ca, "coupling invariant: {ca} vs {cb}");
    }
}

#[test]
fn coupling_is_symmetric_between_partners() {
    let t = Technology::c025();
    let mut rng = Rng::new(0xD5163);
    for _ in 0..32 {
        let len_a = rng.range_f64(100.0, 1500.0);
        let len_b = rng.range_f64(100.0, 1500.0);
        let offset = rng.range_f64(0.0, 500.0);
        let wires = vec![
            WireGeom::min_width("a", 0, 0.0, len_a * 1e-6, &t),
            WireGeom::min_width("b", 1, offset * 1e-6, (offset + len_b) * 1e-6, &t),
        ];
        let db = extract(&wires, &t, 25e-6);
        let na = db.find_net("a").unwrap();
        let nb = db.find_net("b").unwrap();
        assert!(
            (db.total_coupling_cap(na) - db.total_coupling_cap(nb)).abs() < 1e-28,
            "both ends see the same coupling (lens {len_a}/{len_b} offset {offset})"
        );
    }
}

#[test]
fn shield_folding_conserves_total_capacitance() {
    let t = Technology::c025();
    let mut rng = Rng::new(0xD5164);
    for _ in 0..32 {
        let len_um = rng.range_f64(100.0, 2000.0);
        let wires = vec![
            WireGeom::min_width("a", 0, 0.0, len_um * 1e-6, &t),
            WireGeom::min_width("sh", 1, 0.0, len_um * 1e-6, &t),
            WireGeom::min_width("b", 2, 0.0, len_um * 1e-6, &t),
        ];
        let raw = extract(&wires, &t, 25e-6);
        let folded = fold_grounded_nets(&raw, &["sh"]);
        // For net `a`: grounded + remaining coupling after folding must
        // equal its original total (coupling to the shield became ground
        // capacitance; nothing disappears).
        let ra = raw.find_net("a").unwrap();
        let fa = folded.find_net("a").unwrap();
        let before = raw.total_cap(ra);
        let after = folded.total_cap(fa);
        assert!((before - after).abs() <= 1e-12 * before, "{before} vs {after}");
    }
}

#[test]
fn random_clusters_are_well_formed() {
    let t = Technology::c025();
    let mut rng = Rng::new(0xD5165);
    for _ in 0..32 {
        let n_agg = rng.range_usize(1, 12);
        let seed = rng.range_usize(0, 500) as u64;
        let cfg = RandomClusterConfig { n_aggressors: n_agg, seed, ..Default::default() };
        let cl = random_cluster(&cfg, &t);
        assert_eq!(cl.db.num_nets(), n_agg + 1);
        assert_eq!(cl.aggressors.len(), n_agg);
        // The victim always has at least one coupled neighbor (the inner
        // aggressors sit on adjacent tracks overlapping the victim).
        assert!(!cl.db.neighbors(cl.victim).is_empty());
        // Every net has positive wire resistance and capacitance.
        for (_, net) in cl.db.iter() {
            assert!(net.total_resistance() > 0.0);
            assert!(net.total_ground_cap() > 0.0);
            assert!(!net.load_nodes().is_empty());
        }
    }
}
