//! Property-based tests of extraction invariants: conservation of totals
//! under segmentation, coupling symmetry, and generator robustness.

use pcv_designs::extract::{extract, fold_grounded_nets, WireGeom};
use pcv_designs::random::{random_cluster, RandomClusterConfig};
use pcv_designs::Technology;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn totals_are_segmentation_invariant(
        len_um in 20.0f64..3000.0,
        seg_a_um in 5.0f64..60.0,
        seg_b_um in 5.0f64..60.0,
    ) {
        let t = Technology::c025();
        let wire = || WireGeom::min_width("w", 0, 0.0, len_um * 1e-6, &t);
        let a = extract(&[wire()], &t, seg_a_um * 1e-6);
        let b = extract(&[wire()], &t, seg_b_um * 1e-6);
        let na = a.find_net("w").unwrap();
        let nb = b.find_net("w").unwrap();
        let ra = a.net(na).total_resistance();
        let rb = b.net(nb).total_resistance();
        prop_assert!((ra - rb).abs() <= 1e-9 * ra, "total R invariant: {} vs {}", ra, rb);
        let ca = a.net(na).total_ground_cap();
        let cb = b.net(nb).total_ground_cap();
        prop_assert!((ca - cb).abs() <= 1e-9 * ca, "total C invariant: {} vs {}", ca, cb);
    }

    #[test]
    fn coupling_total_is_segmentation_invariant(
        len_um in 50.0f64..2000.0,
        seg_a_um in 5.0f64..50.0,
        seg_b_um in 5.0f64..50.0,
    ) {
        let t = Technology::c025();
        let mk = |seg: f64| {
            let wires = vec![
                WireGeom::min_width("a", 0, 0.0, len_um * 1e-6, &t),
                WireGeom::min_width("b", 1, 0.0, len_um * 1e-6, &t),
            ];
            extract(&wires, &t, seg * 1e-6)
        };
        let da = mk(seg_a_um);
        let db = mk(seg_b_um);
        let ca = da.total_coupling_cap(da.find_net("a").unwrap());
        let cb = db.total_coupling_cap(db.find_net("a").unwrap());
        prop_assert!((ca - cb).abs() <= 1e-9 * ca, "coupling invariant: {} vs {}", ca, cb);
    }

    #[test]
    fn coupling_is_symmetric_between_partners(
        len_a in 100.0f64..1500.0,
        len_b in 100.0f64..1500.0,
        offset in 0.0f64..500.0,
    ) {
        let t = Technology::c025();
        let wires = vec![
            WireGeom::min_width("a", 0, 0.0, len_a * 1e-6, &t),
            WireGeom::min_width("b", 1, offset * 1e-6, (offset + len_b) * 1e-6, &t),
        ];
        let db = extract(&wires, &t, 25e-6);
        let na = db.find_net("a").unwrap();
        let nb = db.find_net("b").unwrap();
        prop_assert!(
            (db.total_coupling_cap(na) - db.total_coupling_cap(nb)).abs() < 1e-28,
            "both ends see the same coupling"
        );
    }

    #[test]
    fn shield_folding_conserves_total_capacitance(
        len_um in 100.0f64..2000.0,
    ) {
        let t = Technology::c025();
        let wires = vec![
            WireGeom::min_width("a", 0, 0.0, len_um * 1e-6, &t),
            WireGeom::min_width("sh", 1, 0.0, len_um * 1e-6, &t),
            WireGeom::min_width("b", 2, 0.0, len_um * 1e-6, &t),
        ];
        let raw = extract(&wires, &t, 25e-6);
        let folded = fold_grounded_nets(&raw, &["sh"]);
        // For net `a`: grounded + remaining coupling after folding must
        // equal its original total (coupling to the shield became ground
        // capacitance; nothing disappears).
        let ra = raw.find_net("a").unwrap();
        let fa = folded.find_net("a").unwrap();
        let before = raw.total_cap(ra);
        let after = folded.total_cap(fa);
        prop_assert!((before - after).abs() <= 1e-12 * before, "{} vs {}", before, after);
    }

    #[test]
    fn random_clusters_are_well_formed(
        n_agg in 1usize..12,
        seed in 0u64..500,
    ) {
        let t = Technology::c025();
        let cfg = RandomClusterConfig { n_aggressors: n_agg, seed, ..Default::default() };
        let cl = random_cluster(&cfg, &t);
        prop_assert_eq!(cl.db.num_nets(), n_agg + 1);
        prop_assert_eq!(cl.aggressors.len(), n_agg);
        // The victim always has at least one coupled neighbor (the inner
        // aggressors sit on adjacent tracks overlapping the victim).
        prop_assert!(!cl.db.neighbors(cl.victim).is_empty());
        // Every net has positive wire resistance and capacitance.
        for (_, net) in cl.db.iter() {
            prop_assert!(net.total_resistance() > 0.0);
            prop_assert!(net.total_ground_cap() > 0.0);
            prop_assert!(!net.load_nodes().is_empty());
        }
    }
}
