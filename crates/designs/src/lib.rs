//! Synthetic deep-submicron design generation and geometric RC extraction.
//!
//! The paper's evaluation runs on a proprietary Texas Instruments 0.25 µm
//! DSP; this crate is the substitution (documented in `DESIGN.md`): it
//! generates layouts with the same *electrical character* — long parallel
//! buses at minimum pitch, coupling capacitance dominating total
//! capacitance, latch-input victims, tri-state buses — and extracts them
//! with a simple area/fringe/coupling model calibrated to published
//! 0.25 µm-class values.
//!
//! * [`tech::Technology`] — process parameters (sheet resistance, area and
//!   fringe capacitance, coupling versus spacing).
//! * [`mod@extract`] — track-based wire geometry and RC extraction into a
//!   [`pcv_netlist::ParasiticDb`].
//! * [`structures`] — the paper's controlled experiments: a victim wire
//!   flanked by two aggressors (Figure 1) at various coupled lengths
//!   (Tables 1–2).
//! * [`random`] — random coupled networks with 2–12 aggressors (Figure 3).
//! * [`dsp`] — a DSP-like block generator with buses, random logic, latch
//!   inputs, complementary flip-flop outputs and switching windows
//!   (Sections 2 and 5).

#![deny(missing_docs)]

pub mod dsp;
pub mod extract;
pub mod random;
pub mod structures;
pub mod tech;

pub use dsp::{DspBlock, DspConfig};
pub use extract::{extract, fold_grounded_nets, WireGeom};
pub use random::{random_cluster, RandomClusterConfig};
pub use structures::{sandwich, shielded_sandwich};
pub use tech::Technology;
