//! 0.25 µm-class interconnect technology parameters.
//!
//! Values are representative of published 0.25 µm processes (aluminum
//! interconnect, oxide dielectric): thin-metal sheet resistance around
//! 70 mΩ/sq, grounded capacitance a few tens of aF/µm, and coupling to an
//! adjacent minimum-spaced wire comparable to or exceeding the grounded
//! component — the regime where, as the paper notes, coupling can exceed
//! 70 % of total capacitance.

/// Interconnect technology description.
#[derive(Debug, Clone, PartialEq)]
pub struct Technology {
    /// Metal sheet resistance (ohms per square).
    pub sheet_res: f64,
    /// Minimum wire width (meters).
    pub min_width: f64,
    /// Minimum wire spacing (meters).
    pub min_spacing: f64,
    /// Grounded (area + fringe) capacitance per length at minimum width
    /// (farads per meter).
    pub cg_per_len: f64,
    /// Coupling capacitance per length to a parallel neighbor at minimum
    /// spacing (farads per meter).
    pub cc_per_len_min_space: f64,
    /// Supply voltage (volts).
    pub vdd: f64,
}

impl Technology {
    /// A representative 0.25 µm technology.
    pub fn c025() -> Self {
        Technology {
            sheet_res: 0.07,
            min_width: 0.6e-6,
            min_spacing: 0.6e-6,
            cg_per_len: 35e-12,           // 0.035 fF/µm
            cc_per_len_min_space: 85e-12, // 0.085 fF/µm
            vdd: 2.5,
        }
    }

    /// Wire resistance of a segment (ohms).
    ///
    /// # Panics
    ///
    /// Panics on non-positive length or width.
    pub fn wire_resistance(&self, length: f64, width: f64) -> f64 {
        assert!(length > 0.0 && width > 0.0, "positive dimensions required");
        self.sheet_res * length / width
    }

    /// Grounded capacitance of a segment (farads); wider wires add area
    /// capacitance proportionally.
    ///
    /// # Panics
    ///
    /// Panics on negative length or non-positive width.
    pub fn ground_cap(&self, length: f64, width: f64) -> f64 {
        assert!(length >= 0.0 && width > 0.0, "positive dimensions required");
        self.cg_per_len * length * (0.5 + 0.5 * width / self.min_width)
    }

    /// Coupling capacitance between two parallel segments with the given
    /// overlap length and edge-to-edge spacing (farads). Falls off
    /// inversely with spacing and is cut off beyond four minimum pitches.
    ///
    /// # Panics
    ///
    /// Panics on negative overlap or non-positive spacing.
    pub fn coupling_cap(&self, overlap: f64, spacing: f64) -> f64 {
        assert!(overlap >= 0.0 && spacing > 0.0, "positive dimensions required");
        if spacing > 4.0 * (self.min_width + self.min_spacing) {
            return 0.0;
        }
        self.cc_per_len_min_space * overlap * (self.min_spacing / spacing)
    }

    /// Fraction of a victim wire's total capacitance that is coupling when
    /// flanked on both sides at minimum spacing — a diagnostic for the
    /// "coupling dominates" regime.
    pub fn coupling_fraction_sandwich(&self) -> f64 {
        let cc = 2.0 * self.cc_per_len_min_space;
        cc / (cc + self.cg_per_len)
    }
}

impl Default for Technology {
    fn default() -> Self {
        Technology::c025()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resistance_scales_with_geometry() {
        let t = Technology::c025();
        let r1 = t.wire_resistance(1000e-6, t.min_width);
        // ~0.117 Ω/µm at minimum width → ~117 Ω per mm.
        assert!(r1 > 80.0 && r1 < 200.0, "got {r1}");
        // Doubling width halves resistance.
        let r2 = t.wire_resistance(1000e-6, 2.0 * t.min_width);
        assert!((r1 / r2 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn capacitance_magnitudes() {
        let t = Technology::c025();
        // A 1 mm minimum-width wire: tens of fF grounded.
        let cg = t.ground_cap(1000e-6, t.min_width);
        assert!(cg > 20e-15 && cg < 60e-15, "got {cg}");
        // Coupling at min spacing exceeds grounded cap.
        let cc = t.coupling_cap(1000e-6, t.min_spacing);
        assert!(cc > cg, "coupling {cc} should exceed grounded {cg}");
    }

    #[test]
    fn coupling_dominates_in_sandwich() {
        let t = Technology::c025();
        // Paper: "capacitance could contribute in excess of 70% of total".
        assert!(t.coupling_fraction_sandwich() > 0.7);
    }

    #[test]
    fn coupling_falls_with_spacing_and_cuts_off() {
        let t = Technology::c025();
        let near = t.coupling_cap(100e-6, t.min_spacing);
        let far = t.coupling_cap(100e-6, 3.0 * t.min_spacing);
        assert!(far < near / 2.5);
        assert_eq!(t.coupling_cap(100e-6, 100.0 * t.min_spacing), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive dimensions")]
    fn rejects_zero_length() {
        Technology::c025().wire_resistance(0.0, 1e-6);
    }

    #[test]
    fn default_is_c025() {
        assert_eq!(Technology::default(), Technology::c025());
    }
}
