//! A DSP-like block generator: the stand-in for the paper's proprietary
//! Texas Instruments DSP design (see `DESIGN.md` for the substitution
//! rationale).
//!
//! The generated block has the structural features the paper's experiments
//! rely on:
//!
//! * **datapath buses** — groups of bits routed in parallel at minimum
//!   pitch over long spans (the strong-coupling population), each driven by
//!   multiple tri-state buffers (the bus design style of Section 2) and
//!   received by latches;
//! * **random logic nets** with a spread of lengths, drive strengths and
//!   fanouts;
//! * **latch-input victims** (the 101-victim experiment of Figures 6–7);
//! * **complementary flip-flop output pairs** and per-net **switching
//!   windows** (the logic/timing correlation of Section 2).

use crate::extract::{extract, WireGeom};
use crate::tech::Technology;
use pcv_cells::library::CellLibrary;
use pcv_netlist::{Design, NetId, ParasiticDb};
use pcv_rng::Rng;

/// Configuration of the generated block.
#[derive(Debug, Clone, PartialEq)]
pub struct DspConfig {
    /// Number of bus groups.
    pub n_buses: usize,
    /// Bits per bus.
    pub bus_bits: usize,
    /// Number of random-logic nets.
    pub n_random_nets: usize,
    /// Clock cycle used for switching windows (seconds).
    pub cycle: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DspConfig {
    fn default() -> Self {
        DspConfig { n_buses: 4, bus_bits: 16, n_random_nets: 60, cycle: 10e-9, seed: 1 }
    }
}

impl DspConfig {
    /// The scale-out tier: a chip big enough that verification dominates
    /// elaboration by a wide margin, so multi-process sharding (each
    /// worker re-elaborates the full chip, then verifies only its slice)
    /// shows real speedup. Ten 32-bit buses plus 320 random nets — about
    /// 640 nets and a strong-coupling population an order of magnitude
    /// past the default fixture.
    pub fn scaleout() -> Self {
        DspConfig { n_buses: 10, bus_bits: 32, n_random_nets: 320, cycle: 10e-9, seed: 7 }
    }
}

/// A generated DSP-like block: gate-level design plus extracted parasitics.
///
/// Design nets and parasitic nets are created in the same order and share
/// names, so `design` net `k` corresponds to `parasitics` net `k`.
#[derive(Debug, Clone)]
pub struct DspBlock {
    /// Gate-level view: instances, drivers, loads, windows, correlations.
    pub design: Design,
    /// Extracted RC + coupling parasitics.
    pub parasitics: ParasiticDb,
}

impl DspBlock {
    /// Nets that feed latch data pins — the victim population of the
    /// paper's Figure 6/7 experiment.
    pub fn latch_victims(&self) -> Vec<NetId> {
        self.design.latch_input_nets()
    }
}

/// Generate a block.
///
/// # Panics
///
/// Panics on a degenerate configuration (zero buses *and* zero random
/// nets, or zero bus bits with buses requested).
pub fn generate(cfg: &DspConfig, tech: &Technology, lib: &CellLibrary) -> DspBlock {
    assert!(cfg.n_buses * cfg.bus_bits + cfg.n_random_nets > 0, "configuration generates no nets");
    let mut rng = Rng::new(cfg.seed);
    let mut wires: Vec<WireGeom> = Vec::new();
    let mut next_track: i64 = 0;

    struct NetPlan {
        name: String,
        is_bus: bool,
        latch_load: bool,
        complement_of: Option<usize>,
    }
    let mut plans: Vec<NetPlan> = Vec::new();

    // --- Bus groups: parallel full-length wires at minimum pitch. ---
    for b in 0..cfg.n_buses {
        let len = rng.range_f64(800e-6, 3000e-6);
        let x0 = rng.range_f64(0.0, 200e-6);
        for bit in 0..cfg.bus_bits {
            let name = format!("bus{b}_{bit}");
            wires.push(WireGeom::min_width(&name, next_track, x0, x0 + len, tech));
            next_track += 1;
            plans.push(NetPlan { name, is_bus: true, latch_load: true, complement_of: None });
        }
        next_track += 3; // routing gap between buses
    }

    // --- Random logic nets, some as complementary pairs. ---
    let mut i = 0;
    while i < cfg.n_random_nets {
        let len = rng.range_f64(60e-6, 1500e-6);
        let x0 = rng.range_f64(0.0, 500e-6);
        let name = format!("net{i}");
        wires.push(WireGeom::min_width(&name, next_track, x0, x0 + len, tech));
        next_track += 1;
        let latch_load = rng.bool_with(0.3);
        let make_pair = rng.bool_with(0.15) && i + 1 < cfg.n_random_nets;
        plans.push(NetPlan { name, is_bus: false, latch_load, complement_of: None });
        if make_pair {
            // The complementary net runs alongside (classic Q/QB routing).
            let name2 = format!("net{}", i + 1);
            wires.push(WireGeom::min_width(&name2, next_track, x0, x0 + len, tech));
            next_track += 1;
            plans.push(NetPlan {
                name: name2,
                is_bus: false,
                latch_load: false,
                complement_of: Some(plans.len() - 1),
            });
            i += 1;
        }
        i += 1;
        // Occasional routing gap so not everything couples.
        if rng.bool_with(0.4) {
            next_track += rng.range_usize(1, 4) as i64;
        }
    }

    let parasitics = extract(&wires, tech, 50e-6);

    // --- Gate-level view. ---
    let mut design = Design::new("dsp_block");
    let net_ids: Vec<NetId> = parasitics.iter().map(|(_, n)| design.add_net(n.name())).collect();

    // Primary inputs feeding the drivers (no parasitics of their own).
    let pi: Vec<NetId> = (0..8).map(|k| design.add_net(format!("pi{k}"))).collect();

    let inv_like = ["INVX2", "INVX4", "INVX8", "BUFX4", "BUFX8", "BUFX12"];
    let gate_like = ["NAND2X2", "NAND2X4", "NOR2X2", "NOR2X4"];
    let tbufs = ["TBUFX4", "TBUFX8", "TBUFX16"];
    let pick = |rng: &mut Rng, list: &[&str]| -> String {
        list[rng.range_usize(0, list.len())].to_owned()
    };

    for (k, plan) in plans.iter().enumerate() {
        let net = net_ids[k];
        if plan.is_bus {
            // Bus design style: several tri-state drivers, one latch.
            let n_drv = rng.range_usize(2, 5);
            for d in 0..n_drv {
                let cell = pick(&mut rng, &tbufs);
                let inp = pi[rng.range_usize(0, pi.len())];
                design.add_instance(
                    format!("{}_drv{d}", plan.name),
                    cell,
                    vec![inp],
                    Some(net),
                    true,
                );
            }
        } else {
            let use_gate = rng.bool_with(0.3);
            let cell =
                if use_gate { pick(&mut rng, &gate_like) } else { pick(&mut rng, &inv_like) };
            let n_inputs = lib.cell(&cell).map_or(1, |c| c.kind.num_inputs());
            let inputs: Vec<NetId> =
                (0..n_inputs).map(|_| pi[rng.range_usize(0, pi.len())]).collect();
            design.add_instance(format!("{}_drv", plan.name), cell, inputs, Some(net), false);
        }
        // Loads.
        if plan.latch_load {
            design.add_instance(format!("{}_lat", plan.name), "LATCH", vec![net], None, false);
            design.mark_latch_input(net);
        }
        let extra_loads = rng.range_usize(0, 3);
        for l in 0..extra_loads {
            let cell = pick(&mut rng, &inv_like);
            design.add_instance(format!("{}_ld{l}", plan.name), cell, vec![net], None, false);
        }
        // Switching window inside the cycle.
        let w0 = rng.range_f64(0.0, 0.6 * cfg.cycle);
        let w1 = w0 + rng.range_f64(0.05 * cfg.cycle, 0.35 * cfg.cycle);
        design.set_window(net, w0, w1.min(cfg.cycle));
        if let Some(other) = plan.complement_of {
            design.set_complementary(net, net_ids[other]);
        }
    }
    DspBlock { design, parasitics }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block() -> DspBlock {
        generate(
            &DspConfig { n_buses: 2, bus_bits: 8, n_random_nets: 30, ..Default::default() },
            &Technology::c025(),
            &CellLibrary::standard_025(),
        )
    }

    #[test]
    fn nets_align_between_views() {
        let b = block();
        assert_eq!(b.parasitics.num_nets(), 2 * 8 + 30);
        for (pid, pnet) in b.parasitics.iter() {
            let did = b.design.find_net(pnet.name()).expect("net exists in design");
            assert_eq!(did.0, pid.0, "aligned ordering");
        }
    }

    #[test]
    fn buses_are_tristate_multi_driven() {
        let b = block();
        let bus0 = b.design.find_net("bus0_0").unwrap();
        assert!(b.design.is_bus(bus0));
        assert!(b.design.drivers_of(bus0).len() >= 2);
        assert!(b.design.is_latch_input(bus0));
    }

    #[test]
    fn bus_bits_couple_strongly() {
        let b = block();
        let p = b.parasitics.find_net("bus0_3").unwrap();
        let cc = b.parasitics.total_coupling_cap(p);
        let cg = b.parasitics.net(p).total_ground_cap();
        assert!(cc > cg, "bus coupling should dominate: {cc} vs {cg}");
    }

    #[test]
    fn latch_victims_exist() {
        let b = block();
        let victims = b.latch_victims();
        assert!(victims.len() >= 16, "all bus bits plus some logic nets");
    }

    #[test]
    fn windows_and_complements_annotated() {
        let b = block();
        let mut windows = 0;
        let mut complements = 0;
        for k in 0..b.parasitics.num_nets() {
            let n = NetId(k);
            if b.design.window(n).is_some() {
                windows += 1;
            }
            if b.design.complement_of(n).is_some() {
                complements += 1;
            }
        }
        assert_eq!(windows, b.parasitics.num_nets());
        assert!(complements >= 2, "some complementary pairs generated");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = block();
        let b = block();
        assert_eq!(a.design.num_instances(), b.design.num_instances());
        assert_eq!(a.parasitics.couplings().len(), b.parasitics.couplings().len());
    }

    #[test]
    fn every_wire_net_has_a_driver() {
        let b = block();
        for (pid, pnet) in b.parasitics.iter() {
            let did = b.design.find_net(pnet.name()).unwrap();
            assert!(!b.design.drivers_of(did).is_empty(), "net {} must be driven", pnet.name());
            let _ = pid;
        }
    }
}
