//! Controlled test structures from the paper's Section 2.
//!
//! Figure 1: a victim wire `V` flanked by two aggressors `A1`, `A2` at
//! minimum pitch. Tables 1 and 2 sweep the coupled length of exactly this
//! structure (100 µm — 4000 µm in the paper).

use crate::extract::{extract, WireGeom};
use crate::tech::Technology;
use pcv_netlist::ParasiticDb;

/// Build and extract the Figure 1 structure: nets named `"a1"`, `"v"`,
/// `"a2"`, all `length` meters long, victim on the middle track.
///
/// Node 0 of every net is the driver (near end); the single load node is
/// the far end.
///
/// # Panics
///
/// Panics on non-positive length.
pub fn sandwich(length: f64, tech: &Technology) -> ParasiticDb {
    assert!(length > 0.0, "length must be positive");
    let seg = (length / 20.0).clamp(5e-6, 50e-6);
    let wires = vec![
        WireGeom::min_width("a1", 0, 0.0, length, tech),
        WireGeom::min_width("v", 1, 0.0, length, tech),
        WireGeom::min_width("a2", 2, 0.0, length, tech),
    ];
    extract(&wires, tech, seg)
}

/// A parallel bundle of `n` equal wires at minimum pitch (track `i` for
/// wire `i`), named `"w0"`, `"w1"`, ….
///
/// # Panics
///
/// Panics on `n == 0` or non-positive length.
pub fn bundle(n: usize, length: f64, tech: &Technology) -> ParasiticDb {
    assert!(n > 0, "need at least one wire");
    assert!(length > 0.0, "length must be positive");
    let seg = (length / 20.0).clamp(5e-6, 50e-6);
    let wires: Vec<WireGeom> =
        (0..n).map(|i| WireGeom::min_width(format!("w{i}"), i as i64, 0.0, length, tech)).collect();
    extract(&wires, tech, seg)
}

/// The Figure 1 structure with grounded shield wires inserted between the
/// victim and each aggressor (tracks: A1, shield, V, shield, A2). The
/// shields are folded into ground capacitance, so the result has the same
/// three nets as [`sandwich`] but with the victim largely decoupled — the
/// classic crosstalk mitigation.
///
/// # Panics
///
/// Panics on non-positive length.
pub fn shielded_sandwich(length: f64, tech: &Technology) -> ParasiticDb {
    assert!(length > 0.0, "length must be positive");
    let seg = (length / 20.0).clamp(5e-6, 50e-6);
    let wires = vec![
        WireGeom::min_width("a1", 0, 0.0, length, tech),
        WireGeom::min_width("sh1", 1, 0.0, length, tech),
        WireGeom::min_width("v", 2, 0.0, length, tech),
        WireGeom::min_width("sh2", 3, 0.0, length, tech),
        WireGeom::min_width("a2", 4, 0.0, length, tech),
    ];
    let raw = extract(&wires, tech, seg);
    crate::extract::fold_grounded_nets(&raw, &["sh1", "sh2"])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sandwich_has_three_nets_with_symmetric_coupling() {
        let t = Technology::c025();
        let db = sandwich(1000e-6, &t);
        assert_eq!(db.num_nets(), 3);
        let v = db.find_net("v").unwrap();
        let a1 = db.find_net("a1").unwrap();
        let a2 = db.find_net("a2").unwrap();
        let nbrs = db.neighbors(v);
        assert_eq!(nbrs.len(), 2);
        // Symmetric aggressors couple equally.
        assert!((nbrs[0].1 - nbrs[1].1).abs() / nbrs[0].1 < 1e-9);
        // Victim coupling exceeds its grounded cap (DSM regime).
        assert!(db.total_coupling_cap(v) > db.net(v).total_ground_cap());
        let _ = (a1, a2);
    }

    #[test]
    fn coupling_grows_linearly_with_length() {
        let t = Technology::c025();
        let short = sandwich(100e-6, &t);
        let long = sandwich(4000e-6, &t);
        let cs = short.total_coupling_cap(short.find_net("v").unwrap());
        let cl = long.total_coupling_cap(long.find_net("v").unwrap());
        assert!((cl / cs - 40.0).abs() < 0.5, "ratio {}", cl / cs);
    }

    #[test]
    fn bundle_builds_n_wires() {
        let t = Technology::c025();
        let db = bundle(5, 500e-6, &t);
        assert_eq!(db.num_nets(), 5);
        // Middle wire sees two strong neighbors.
        let mid = db.find_net("w2").unwrap();
        assert!(db.neighbors(mid).len() >= 2);
    }

    #[test]
    fn shielding_decouples_the_victim() {
        let t = Technology::c025();
        let open = sandwich(1000e-6, &t);
        let shielded = shielded_sandwich(1000e-6, &t);
        assert_eq!(shielded.num_nets(), 3);
        let vo = open.find_net("v").unwrap();
        let vs = shielded.find_net("v").unwrap();
        // Coupling to the aggressors collapses (they are 2 tracks away and
        // screened); grounded cap grows by the folded shield coupling.
        assert!(
            shielded.total_coupling_cap(vs) < 0.5 * open.total_coupling_cap(vo),
            "shielded {} vs open {}",
            shielded.total_coupling_cap(vs),
            open.total_coupling_cap(vo)
        );
        assert!(shielded.net(vs).total_ground_cap() > open.net(vo).total_ground_cap());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_length() {
        sandwich(-1.0, &Technology::c025());
    }
}
