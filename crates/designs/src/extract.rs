//! Track-based wire geometry and RC extraction.
//!
//! Wires run horizontally on routing *tracks* (integer y positions at one
//! pitch each). Extraction segments every wire into RC sections and builds
//! coupling capacitors between vertically adjacent wires over their overlap
//! length — producing the "RC equivalent circuit form" (grounded plus
//! coupling capacitors) that the paper's flow starts from.

use crate::tech::Technology;
use pcv_netlist::{NetNodeRef, NetParasitics, ParasiticDb};

/// A routed wire: a horizontal segment on a track.
#[derive(Debug, Clone, PartialEq)]
pub struct WireGeom {
    /// Net name (must be unique per extraction).
    pub name: String,
    /// Track index (vertical position in pitches).
    pub track: i64,
    /// Start abscissa (meters); the driver pin sits here.
    pub x0: f64,
    /// End abscissa (meters); the receiver pin sits here.
    pub x1: f64,
    /// Wire width (meters).
    pub width: f64,
}

impl WireGeom {
    /// A minimum-width wire.
    ///
    /// # Panics
    ///
    /// Panics unless `x1 > x0`.
    pub fn min_width(
        name: impl Into<String>,
        track: i64,
        x0: f64,
        x1: f64,
        tech: &Technology,
    ) -> Self {
        assert!(x1 > x0, "wire must have positive extent");
        WireGeom { name: name.into(), track, x0, x1, width: tech.min_width }
    }

    /// Wire length (meters).
    pub fn length(&self) -> f64 {
        self.x1 - self.x0
    }
}

/// Extract a set of routed wires into a parasitic database.
///
/// `seg_len` is the maximum RC section length (meters); 25–50 µm resolves
/// nanosecond-edge wave shapes on millimeter wires.
///
/// # Panics
///
/// Panics on non-positive `seg_len`, duplicate wire names, or degenerate
/// wire extents.
pub fn extract(wires: &[WireGeom], tech: &Technology, seg_len: f64) -> ParasiticDb {
    assert!(seg_len > 0.0, "segment length must be positive");
    let mut db = ParasiticDb::new();
    let pitch = tech.min_width + tech.min_spacing;

    // Node positions per wire, for coupling attachment.
    let mut node_positions: Vec<Vec<f64>> = Vec::with_capacity(wires.len());
    let mut ids = Vec::with_capacity(wires.len());

    for w in wires {
        assert!(w.x1 > w.x0, "wire {} has non-positive extent", w.name);
        let len = w.length();
        let nseg = (len / seg_len).ceil().max(1.0) as usize;
        let dl = len / nseg as f64;
        let mut net = NetParasitics::new(w.name.clone());
        let mut positions = vec![w.x0];
        let mut prev = 0usize; // driver node
        for k in 1..=nseg {
            let node = net.add_node();
            positions.push(w.x0 + dl * k as f64);
            net.add_resistor(prev, node, tech.wire_resistance(dl, w.width));
            prev = node;
        }
        // Grounded capacitance lumped at nodes: half-sections at the ends.
        for (idx, _) in positions.iter().enumerate() {
            let span = if idx == 0 || idx == nseg { dl / 2.0 } else { dl };
            let c = tech.ground_cap(span, w.width);
            if c > 0.0 {
                net.add_ground_cap(idx, c);
            }
        }
        net.mark_load(prev);
        ids.push(db.add_net(net));
        node_positions.push(positions);
    }

    // Coupling between wires on nearby tracks.
    for i in 0..wires.len() {
        for j in (i + 1)..wires.len() {
            let (a, b) = (&wires[i], &wires[j]);
            let dt = (a.track - b.track).unsigned_abs() as f64;
            if dt == 0.0 {
                continue; // same track: no lateral coupling modeled
            }
            let spacing = dt * pitch - 0.5 * (a.width + b.width);
            if spacing <= 0.0 {
                continue;
            }
            let lo = a.x0.max(b.x0);
            let hi = a.x1.min(b.x1);
            if hi <= lo {
                continue;
            }
            // Chunk the overlap and hang each chunk's coupling between the
            // nearest nodes of the two wires.
            let chunks = (((hi - lo) / seg_len).ceil()).max(1.0) as usize;
            let dl = (hi - lo) / chunks as f64;
            for k in 0..chunks {
                let mid = lo + dl * (k as f64 + 0.5);
                let cc = tech.coupling_cap(dl, spacing);
                if cc <= 0.0 {
                    continue;
                }
                let na = nearest_node(&node_positions[i], mid);
                let nb = nearest_node(&node_positions[j], mid);
                db.add_coupling(
                    NetNodeRef { net: ids[i], node: na },
                    NetNodeRef { net: ids[j], node: nb },
                    cc,
                );
            }
        }
    }
    db
}

/// Fold grounded (shield) nets into the rest of the database: every
/// coupling capacitor touching a folded net becomes a grounded capacitor at
/// its other terminal, and the folded nets disappear.
///
/// Shield wires are tied to the supply rails, so electrically their
/// coupling is just extra ground capacitance for their neighbors — this is
/// how extraction flows model shielding.
///
/// # Panics
///
/// Panics if a named net does not exist.
pub fn fold_grounded_nets(db: &ParasiticDb, grounded: &[&str]) -> ParasiticDb {
    use std::collections::HashSet;
    let fold: HashSet<_> = grounded
        .iter()
        .map(|n| db.find_net(n).unwrap_or_else(|| panic!("unknown net {n}")))
        .collect();
    let mut out = ParasiticDb::new();
    // Copy kept nets, remembering new ids.
    let mut remap = std::collections::HashMap::new();
    for (id, net) in db.iter() {
        if fold.contains(&id) {
            continue;
        }
        remap.insert(id, out.add_net(net.clone()));
    }
    for c in db.couplings() {
        match (fold.contains(&c.a.net), fold.contains(&c.b.net)) {
            (false, false) => {
                out.add_coupling(
                    NetNodeRef { net: remap[&c.a.net], node: c.a.node },
                    NetNodeRef { net: remap[&c.b.net], node: c.b.node },
                    c.farads,
                );
            }
            (false, true) => {
                out.net_mut(remap[&c.a.net]).add_ground_cap(c.a.node, c.farads);
            }
            (true, false) => {
                out.net_mut(remap[&c.b.net]).add_ground_cap(c.b.node, c.farads);
            }
            (true, true) => {}
        }
    }
    out
}

fn nearest_node(positions: &[f64], x: f64) -> usize {
    let mut best = 0usize;
    let mut dist = f64::INFINITY;
    for (k, &p) in positions.iter().enumerate() {
        let d = (p - x).abs();
        if d < dist {
            dist = d;
            best = k;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> Technology {
        Technology::c025()
    }

    #[test]
    fn single_wire_totals_match_analytic() {
        let t = tech();
        let len = 1000e-6;
        let w = WireGeom::min_width("a", 0, 0.0, len, &t);
        let db = extract(&[w], &t, 50e-6);
        let id = db.find_net("a").unwrap();
        let net = db.net(id);
        assert_eq!(net.num_nodes(), 21); // 20 segments + driver
        let r_total = net.total_resistance();
        let r_exact = t.wire_resistance(len, t.min_width);
        assert!((r_total - r_exact).abs() / r_exact < 1e-9);
        let c_total = net.total_ground_cap();
        let c_exact = t.ground_cap(len, t.min_width);
        assert!((c_total - c_exact).abs() / c_exact < 1e-9);
        assert_eq!(net.load_nodes(), &[20]);
    }

    #[test]
    fn adjacent_wires_couple_fully_over_overlap() {
        let t = tech();
        let len = 500e-6;
        let a = WireGeom::min_width("a", 0, 0.0, len, &t);
        let b = WireGeom::min_width("b", 1, 0.0, len, &t);
        let db = extract(&[a, b], &t, 25e-6);
        let ia = db.find_net("a").unwrap();
        let cc = db.total_coupling_cap(ia);
        let exact = t.coupling_cap(len, t.min_spacing);
        assert!((cc - exact).abs() / exact < 1e-9, "{cc} vs {exact}");
    }

    #[test]
    fn partial_overlap_couples_partially() {
        let t = tech();
        let a = WireGeom::min_width("a", 0, 0.0, 400e-6, &t);
        let b = WireGeom::min_width("b", 1, 300e-6, 700e-6, &t);
        let db = extract(&[a, b], &t, 25e-6);
        let cc = db.total_coupling_cap(db.find_net("a").unwrap());
        let exact = t.coupling_cap(100e-6, t.min_spacing);
        assert!((cc - exact).abs() / exact < 1e-9);
    }

    #[test]
    fn distant_tracks_do_not_couple() {
        let t = tech();
        let a = WireGeom::min_width("a", 0, 0.0, 400e-6, &t);
        let b = WireGeom::min_width("b", 30, 0.0, 400e-6, &t);
        let db = extract(&[a, b], &t, 25e-6);
        assert_eq!(db.couplings().len(), 0);
    }

    #[test]
    fn second_neighbor_couples_weaker() {
        let t = tech();
        let a = WireGeom::min_width("a", 0, 0.0, 400e-6, &t);
        let b = WireGeom::min_width("b", 1, 0.0, 400e-6, &t);
        let c = WireGeom::min_width("c", 2, 0.0, 400e-6, &t);
        let db = extract(&[a, b, c], &t, 25e-6);
        let ia = db.find_net("a").unwrap();
        let nbrs = db.neighbors(ia);
        assert_eq!(nbrs.len(), 2);
        let (first, second) = (nbrs[0].1, nbrs[1].1);
        assert!(first > 2.0 * second, "{first} vs {second}");
    }

    #[test]
    fn coupling_attaches_along_the_wire_not_just_ends() {
        let t = tech();
        let a = WireGeom::min_width("a", 0, 0.0, 1000e-6, &t);
        let b = WireGeom::min_width("b", 1, 0.0, 1000e-6, &t);
        let db = extract(&[a, b], &t, 50e-6);
        // Many distinct coupling caps, touching interior nodes.
        assert!(db.couplings().len() >= 15);
        let interior = db.couplings().iter().filter(|c| c.a.node > 0 && c.a.node < 20).count();
        assert!(interior > 10);
    }

    #[test]
    fn folding_converts_coupling_to_ground_cap() {
        let t = tech();
        let a = WireGeom::min_width("a", 0, 0.0, 400e-6, &t);
        let sh = WireGeom::min_width("sh", 1, 0.0, 400e-6, &t);
        let b = WireGeom::min_width("b", 2, 0.0, 400e-6, &t);
        let raw = extract(&[a, sh, b], &t, 25e-6);
        let folded = fold_grounded_nets(&raw, &["sh"]);
        assert_eq!(folded.num_nets(), 2);
        let fa = folded.find_net("a").unwrap();
        // a's coupling to the shield became grounded capacitance.
        let raw_a = raw.find_net("a").unwrap();
        let shield_cc = raw
            .couplings_of(raw_a)
            .filter(|c| {
                let other = if c.a.net == raw_a { c.b.net } else { c.a.net };
                raw.net(other).name() == "sh"
            })
            .map(|c| c.farads)
            .sum::<f64>();
        let delta = folded.net(fa).total_ground_cap() - raw.net(raw_a).total_ground_cap();
        assert!((delta - shield_cc).abs() < 1e-28, "{delta} vs {shield_cc}");
        // Direct a<->b coupling (2 tracks apart) is preserved.
        let direct_raw: f64 = raw
            .couplings_of(raw_a)
            .filter(|c| {
                let other = if c.a.net == raw_a { c.b.net } else { c.a.net };
                raw.net(other).name() == "b"
            })
            .map(|c| c.farads)
            .sum();
        assert!((folded.total_coupling_cap(fa) - direct_raw).abs() < 1e-28);
    }

    #[test]
    #[should_panic(expected = "unknown net")]
    fn folding_unknown_net_panics() {
        let t = tech();
        let a = WireGeom::min_width("a", 0, 0.0, 100e-6, &t);
        let db = extract(&[a], &t, 25e-6);
        fold_grounded_nets(&db, &["nope"]);
    }

    #[test]
    #[should_panic(expected = "positive extent")]
    fn rejects_degenerate_wire() {
        let t = tech();
        WireGeom::min_width("a", 0, 1e-6, 1e-6, &t);
    }
}
