//! Random coupled networks — the population behind the paper's Figure 3
//! (113 coupled networks with 2–12 aggressors, extracted from the DSP).
//!
//! Each cluster has one victim wire and `n_aggressors` aggressor wires
//! stacked on neighboring tracks with randomized spans, so coupling
//! strengths and RC shapes vary the way extracted design data does.

use crate::extract::{extract, WireGeom};
use crate::tech::Technology;
use pcv_netlist::{PNetId, ParasiticDb};
use pcv_rng::Rng;

/// Configuration for a random coupled cluster.
#[derive(Debug, Clone)]
pub struct RandomClusterConfig {
    /// Number of aggressor nets (the paper sweeps 2–12).
    pub n_aggressors: usize,
    /// Shortest wire length (meters).
    pub min_len: f64,
    /// Longest wire length (meters).
    pub max_len: f64,
    /// RNG seed (each Figure 3 case uses a distinct seed).
    pub seed: u64,
}

impl Default for RandomClusterConfig {
    fn default() -> Self {
        RandomClusterConfig { n_aggressors: 4, min_len: 200e-6, max_len: 2000e-6, seed: 1 }
    }
}

/// A generated cluster: the parasitics plus the victim/aggressor roles.
#[derive(Debug, Clone)]
pub struct RandomCluster {
    /// Extracted parasitics.
    pub db: ParasiticDb,
    /// The victim net (named `"victim"`).
    pub victim: PNetId,
    /// Aggressor nets (named `"agg<i>"`), strongest-coupled first is *not*
    /// guaranteed — order follows generation.
    pub aggressors: Vec<PNetId>,
}

/// Generate a random victim/aggressor cluster.
///
/// # Panics
///
/// Panics if `n_aggressors == 0` or the length bounds are inverted or
/// non-positive.
pub fn random_cluster(cfg: &RandomClusterConfig, tech: &Technology) -> RandomCluster {
    assert!(cfg.n_aggressors >= 1, "need at least one aggressor");
    assert!(cfg.min_len > 0.0 && cfg.max_len >= cfg.min_len, "invalid length bounds");
    let mut rng = Rng::new(cfg.seed);
    let vic_len = rng.range_f64(cfg.min_len, cfg.max_len);
    let mut wires = vec![WireGeom::min_width("victim", 0, 0.0, vic_len, tech)];

    for i in 0..cfg.n_aggressors {
        // Alternate above/below the victim, moving outward: tracks
        // +1, -1, +2, -2, ... so early aggressors couple most strongly.
        let ring = (i / 2 + 1) as i64;
        let track = if i % 2 == 0 { ring } else { -ring };
        // Random span overlapping the victim.
        let len = rng.range_f64(cfg.min_len, cfg.max_len).min(vic_len * 1.5);
        let max_start = (vic_len - 0.3 * len).max(1e-6);
        let x0 = rng.range_f64(0.0, max_start);
        wires.push(WireGeom::min_width(format!("agg{i}"), track, x0, x0 + len, tech));
    }
    let seg = (vic_len / 20.0).clamp(5e-6, 50e-6);
    let db = extract(&wires, tech, seg);
    let victim = db.find_net("victim").expect("victim net exists");
    let aggressors = (0..cfg.n_aggressors)
        .map(|i| db.find_net(&format!("agg{i}")).expect("aggressor net exists"))
        .collect();
    RandomCluster { db, victim, aggressors }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let t = Technology::c025();
        let cfg = RandomClusterConfig { seed: 42, ..Default::default() };
        let a = random_cluster(&cfg, &t);
        let b = random_cluster(&cfg, &t);
        assert_eq!(a.db.num_nets(), b.db.num_nets());
        assert!(
            (a.db.total_coupling_cap(a.victim) - b.db.total_coupling_cap(b.victim)).abs() < 1e-30
        );
    }

    #[test]
    fn different_seeds_differ() {
        let t = Technology::c025();
        let a = random_cluster(&RandomClusterConfig { seed: 1, ..Default::default() }, &t);
        let b = random_cluster(&RandomClusterConfig { seed: 2, ..Default::default() }, &t);
        assert!(
            (a.db.total_coupling_cap(a.victim) - b.db.total_coupling_cap(b.victim)).abs() > 1e-18
        );
    }

    #[test]
    fn aggressor_count_is_respected_across_range() {
        let t = Technology::c025();
        for n in [2usize, 5, 8, 12] {
            let cfg = RandomClusterConfig { n_aggressors: n, seed: n as u64, ..Default::default() };
            let cl = random_cluster(&cfg, &t);
            assert_eq!(cl.aggressors.len(), n);
            assert_eq!(cl.db.num_nets(), n + 1);
            // The victim couples to at least the inner aggressors.
            assert!(!cl.db.neighbors(cl.victim).is_empty());
        }
    }

    #[test]
    fn victim_coupling_is_substantial() {
        let t = Technology::c025();
        let cl = random_cluster(
            &RandomClusterConfig { n_aggressors: 6, seed: 7, ..Default::default() },
            &t,
        );
        let cc = cl.db.total_coupling_cap(cl.victim);
        let cg = cl.db.net(cl.victim).total_ground_cap();
        assert!(cc > 0.3 * cg, "coupling {cc} vs grounded {cg}");
    }

    #[test]
    #[should_panic(expected = "at least one aggressor")]
    fn rejects_zero_aggressors() {
        random_cluster(
            &RandomClusterConfig { n_aggressors: 0, ..Default::default() },
            &Technology::c025(),
        );
    }
}
