//! Tiny deterministic pseudo-random generators for design generation and
//! randomized testing.
//!
//! The workspace must build with **zero network access**, so instead of the
//! `rand` crate the generators here are self-contained: a [`SplitMix64`]
//! stream (used for seeding and as a general-purpose source) and a
//! [`XorShift128Plus`] generator built on top of it. Both are tiny, fast,
//! and — critically for the paper's experiments — **reproducible forever**:
//! a seed fully determines the stream, independent of platform or library
//! version.
//!
//! The API mirrors the small slice of `rand` the workspace actually used:
//! uniform floats over a range, bounded integers, and Bernoulli draws.

#![deny(missing_docs)]

/// SplitMix64: Steele, Lea & Flood's 64-bit mixing generator.
///
/// Passes BigCrush when used as a stream; its main role here is seeding and
/// cheap general-purpose draws.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed the stream. Every distinct seed yields an independent-looking
    /// sequence; seed `0` is valid.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// xorshift128+: Vigna's fast generator with 128 bits of state, seeded
/// through SplitMix64 so correlated seeds (0, 1, 2, …) still produce
/// decorrelated streams.
#[derive(Debug, Clone)]
pub struct XorShift128Plus {
    s0: u64,
    s1: u64,
}

impl XorShift128Plus {
    /// Seed through a SplitMix64 expansion of `seed`.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s0 = sm.next_u64();
        let mut s1 = sm.next_u64();
        if s0 == 0 && s1 == 0 {
            s1 = 0x9E3779B97F4A7C15; // the all-zero state is absorbing
        }
        XorShift128Plus { s0, s1 }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.s0;
        let y = self.s1;
        self.s0 = y;
        x ^= x << 23;
        self.s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
        self.s1.wrapping_add(y)
    }
}

/// The generator the rest of the workspace uses (xorshift128+ under a
/// stable name, so the algorithm can be swapped without touching callers).
pub type Rng = XorShift128Plus;

macro_rules! impl_draws {
    ($ty:ident) => {
        impl $ty {
            /// Uniform draw in `[0, 1)` with 53 random mantissa bits.
            pub fn f64(&mut self) -> f64 {
                (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
            }

            /// Uniform draw in `[lo, hi)` (equals `lo` when the range is
            /// empty or degenerate).
            ///
            /// # Panics
            ///
            /// Panics if `hi < lo`.
            pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
                assert!(hi >= lo, "inverted range {lo}..{hi}");
                lo + (hi - lo) * self.f64()
            }

            /// Uniform integer in `[lo, hi)`.
            ///
            /// # Panics
            ///
            /// Panics if `hi <= lo`.
            pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
                assert!(hi > lo, "empty range {lo}..{hi}");
                let span = (hi - lo) as u64;
                // Multiply-shift bounded draw (Lemire); the tiny modulo
                // bias of the plain approach is irrelevant here but this
                // is just as cheap.
                let hi64 = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
                lo + hi64 as usize
            }

            /// Bernoulli draw: `true` with probability `p` (clamped to
            /// `[0, 1]`).
            pub fn bool_with(&mut self, p: f64) -> bool {
                self.f64() < p
            }
        }
    };
}

impl_draws!(SplitMix64);
impl_draws!(XorShift128Plus);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_is_in_unit_interval_and_covers_it() {
        let mut r = Rng::new(7);
        let draws: Vec<f64> = (0..4096).map(|_| r.f64()).collect();
        assert!(draws.iter().all(|&x| (0.0..1.0).contains(&x)));
        assert!(draws.iter().any(|&x| x < 0.1));
        assert!(draws.iter().any(|&x| x > 0.9));
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - 0.5).abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn range_draws_respect_bounds() {
        let mut r = Rng::new(3);
        for _ in 0..1000 {
            let x = r.range_f64(-2.5, 7.0);
            assert!((-2.5..7.0).contains(&x));
            let k = r.range_usize(3, 9);
            assert!((3..9).contains(&k));
        }
        // Every bucket of a small integer range gets hit.
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[r.range_usize(0, 6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bool_with_tracks_probability() {
        let mut r = Rng::new(11);
        let hits = (0..10_000).filter(|_| r.bool_with(0.3)).count();
        assert!((2700..3300).contains(&hits), "hits {hits}");
        assert!(!r.bool_with(0.0));
        assert!(r.bool_with(1.0));
    }

    #[test]
    fn splitmix_matches_reference_vector() {
        // Reference values for seed 1234567 from the published SplitMix64
        // C implementation.
        let mut r = SplitMix64::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Rng::new(0);
        let a = r.next_u64();
        let b = r.next_u64();
        assert!(a != 0 || b != 0);
        assert_ne!(a, b);
    }
}
