//! A SPICE-like text deck format for [`Circuit`].
//!
//! Supported records (case-insensitive leading letter selects the element):
//!
//! ```text
//! * comment
//! R<name> <n+> <n-> <value>
//! C<name> <n+> <n-> <value>
//! V<name> <n+> <n-> DC <v> | PULSE(<v0> <v1> <td> <tr> <tf> <pw> <per>) | PWL(<t> <v> ...)
//! I<name> <n+> <n-> DC <v> | PULSE(...) | PWL(...)
//! M<name> <d> <g> <s> TYPE=<N|P> W=<value> [L=<value>]
//! .end
//! ```
//!
//! Engineering suffixes `f p n u m k meg g t` are accepted on numbers.

use crate::circuit::{Circuit, Element, MosParams};
use crate::wave::SourceWave;
use std::fmt;

/// Errors produced while parsing a circuit deck.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseDeckError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseDeckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deck parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseDeckError {}

/// Parse an engineering-notation number like `2.5k`, `10u`, `3meg`, `1e-12`.
///
/// Returns `None` for malformed input.
pub fn parse_eng(s: &str) -> Option<f64> {
    let lower = s.trim().to_ascii_lowercase();
    let (body, mult) = if let Some(b) = lower.strip_suffix("meg") {
        (b, 1e6)
    } else if let Some(b) = lower.strip_suffix('f') {
        (b, 1e-15)
    } else if let Some(b) = lower.strip_suffix('p') {
        (b, 1e-12)
    } else if let Some(b) = lower.strip_suffix('n') {
        (b, 1e-9)
    } else if let Some(b) = lower.strip_suffix('u') {
        (b, 1e-6)
    } else if let Some(b) = lower.strip_suffix('m') {
        (b, 1e-3)
    } else if let Some(b) = lower.strip_suffix('k') {
        (b, 1e3)
    } else if let Some(b) = lower.strip_suffix('g') {
        (b, 1e9)
    } else if let Some(b) = lower.strip_suffix('t') {
        (b, 1e12)
    } else {
        (lower.as_str(), 1.0)
    };
    body.parse::<f64>().ok().map(|v| v * mult)
}

fn parse_wave(tokens: &[&str], line: usize) -> Result<SourceWave, ParseDeckError> {
    let err = |m: &str| ParseDeckError { line, message: m.to_owned() };
    if tokens.is_empty() {
        return Err(err("missing source specification"));
    }
    // Re-join and normalize parentheses to spaces for PULSE(...)/PWL(...).
    let joined = tokens.join(" ");
    let upper = joined.to_ascii_uppercase();
    if let Some(rest) = upper.strip_prefix("DC") {
        let v = parse_eng(rest.trim()).ok_or_else(|| err("invalid DC value"))?;
        return Ok(SourceWave::Dc(v));
    }
    let normalized = joined.replace(['(', ')', ','], " ");
    let parts: Vec<&str> = normalized.split_whitespace().collect();
    match parts[0].to_ascii_uppercase().as_str() {
        "PULSE" => {
            if parts.len() != 8 {
                return Err(err("PULSE needs 7 values (v0 v1 td tr tf pw per)"));
            }
            let vals: Option<Vec<f64>> = parts[1..].iter().map(|t| parse_eng(t)).collect();
            let v = vals.ok_or_else(|| err("invalid PULSE value"))?;
            Ok(SourceWave::Pulse {
                v0: v[0],
                v1: v[1],
                delay: v[2],
                rise: v[3],
                fall: v[4],
                width: v[5],
                period: if v[6] <= 0.0 { f64::INFINITY } else { v[6] },
            })
        }
        "PWL" => {
            let vals: Option<Vec<f64>> = parts[1..].iter().map(|t| parse_eng(t)).collect();
            let v = vals.ok_or_else(|| err("invalid PWL value"))?;
            if v.is_empty() || v.len() % 2 != 0 {
                return Err(err("PWL needs an even, non-zero number of values"));
            }
            let points: Vec<(f64, f64)> = v.chunks(2).map(|p| (p[0], p[1])).collect();
            for w in points.windows(2) {
                if w[1].0 < w[0].0 {
                    return Err(err("PWL times must be non-decreasing"));
                }
            }
            Ok(SourceWave::Pwl(points))
        }
        _ => {
            // Bare value means DC.
            let v = parse_eng(tokens[0]).ok_or_else(|| err("unrecognized source spec"))?;
            Ok(SourceWave::Dc(v))
        }
    }
}

/// Parse a deck into a circuit.
///
/// # Errors
///
/// Returns [`ParseDeckError`] with a line number for malformed records.
pub fn parse_deck(text: &str) -> Result<Circuit, ParseDeckError> {
    let mut ckt = Circuit::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let err = |m: &str| ParseDeckError { line, message: m.to_owned() };
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('*') {
            continue;
        }
        if trimmed.starts_with('.') {
            if trimmed.eq_ignore_ascii_case(".end") {
                break;
            }
            continue; // other dot-cards ignored
        }
        let tokens: Vec<&str> = trimmed.split_whitespace().collect();
        let head = tokens[0];
        let kind = head.chars().next().expect("non-empty token").to_ascii_uppercase();
        match kind {
            'R' | 'C' => {
                if tokens.len() != 4 {
                    return Err(err("R/C record needs <n+> <n-> <value>"));
                }
                let a = ckt.node(tokens[1]);
                let b = ckt.node(tokens[2]);
                let v = parse_eng(tokens[3]).ok_or_else(|| err("invalid value"))?;
                if v <= 0.0 || !v.is_finite() {
                    return Err(err("value must be positive"));
                }
                if kind == 'R' {
                    ckt.add_resistor(a, b, v);
                } else {
                    ckt.add_capacitor(a, b, v);
                }
            }
            'V' | 'I' => {
                if tokens.len() < 4 {
                    return Err(err("source record needs <n+> <n-> <spec>"));
                }
                let pos = ckt.node(tokens[1]);
                let neg = ckt.node(tokens[2]);
                let wave = parse_wave(&tokens[3..], line)?;
                if kind == 'V' {
                    ckt.add_vsrc(pos, neg, wave);
                } else {
                    ckt.add_isrc(pos, neg, wave);
                }
            }
            'M' => {
                if tokens.len() < 5 {
                    return Err(err("M record needs <d> <g> <s> TYPE=.. W=.."));
                }
                let d = ckt.node(tokens[1]);
                let g = ckt.node(tokens[2]);
                let s = ckt.node(tokens[3]);
                let mut kind_p = false;
                let mut w = None;
                let mut l = None;
                for t in &tokens[4..] {
                    let up = t.to_ascii_uppercase();
                    if let Some(v) = up.strip_prefix("TYPE=") {
                        kind_p = v.starts_with('P');
                    } else if let Some(v) = up.strip_prefix("W=") {
                        w = parse_eng(v);
                    } else if let Some(v) = up.strip_prefix("L=") {
                        l = parse_eng(v);
                    } else {
                        return Err(err("unknown MOSFET parameter"));
                    }
                }
                let w = w.ok_or_else(|| err("MOSFET needs W="))?;
                let mut params =
                    if kind_p { MosParams::pmos_025(w) } else { MosParams::nmos_025(w) };
                if let Some(l) = l {
                    params.l = l;
                }
                ckt.add_mosfet(d, g, s, params);
            }
            other => return Err(err(&format!("unknown element type {other:?}"))),
        }
    }
    Ok(ckt)
}

/// Serialize a circuit to deck text.
pub fn write_deck(ckt: &Circuit, title: &str) -> String {
    let mut out = format!("* {title}\n");
    for (i, e) in ckt.elements().iter().enumerate() {
        match e {
            Element::Resistor { a, b, ohms } => {
                out.push_str(&format!(
                    "R{i} {} {} {ohms:e}\n",
                    ckt.node_name(*a),
                    ckt.node_name(*b)
                ));
            }
            Element::Capacitor { a, b, farads } => {
                out.push_str(&format!(
                    "C{i} {} {} {farads:e}\n",
                    ckt.node_name(*a),
                    ckt.node_name(*b)
                ));
            }
            Element::Vsrc { pos, neg, wave } | Element::Isrc { pos, neg, wave } => {
                let letter = if matches!(e, Element::Vsrc { .. }) { 'V' } else { 'I' };
                let spec = match wave {
                    SourceWave::Dc(v) => format!("DC {v:e}"),
                    SourceWave::Pulse { v0, v1, delay, rise, fall, width, period } => {
                        let per = if period.is_finite() { *period } else { 0.0 };
                        format!(
                            "PULSE({v0:e} {v1:e} {delay:e} {rise:e} {fall:e} {width:e} {per:e})"
                        )
                    }
                    SourceWave::Pwl(points) => {
                        let body: Vec<String> =
                            points.iter().map(|(t, v)| format!("{t:e} {v:e}")).collect();
                        format!("PWL({})", body.join(" "))
                    }
                };
                out.push_str(&format!(
                    "{letter}{i} {} {} {spec}\n",
                    ckt.node_name(*pos),
                    ckt.node_name(*neg)
                ));
            }
            Element::Mosfet { d, g, s, params } => {
                let ty = match params.kind {
                    crate::circuit::MosKind::Nmos => "N",
                    crate::circuit::MosKind::Pmos => "P",
                };
                out.push_str(&format!(
                    "M{i} {} {} {} TYPE={ty} W={:e} L={:e}\n",
                    ckt.node_name(*d),
                    ckt.node_name(*g),
                    ckt.node_name(*s),
                    params.w,
                    params.l
                ));
            }
        }
    }
    out.push_str(".end\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::MosKind;

    #[test]
    fn eng_suffixes() {
        let close = |s: &str, v: f64| {
            let got = parse_eng(s).unwrap();
            assert!((got - v).abs() <= 1e-12 * v.abs(), "{s}: {got} vs {v}");
        };
        close("1k", 1e3);
        close("2.5u", 2.5e-6);
        close("3meg", 3e6);
        close("10f", 10e-15);
        close("4p", 4e-12);
        close("7n", 7e-9);
        close("1.5m", 1.5e-3);
        close("2g", 2e9);
        close("1e-12", 1e-12);
        assert_eq!(parse_eng("bogus"), None);
    }

    #[test]
    fn parse_rc_deck() {
        let ckt = parse_deck("R1 in out 1k\nCload out 0 50f\n.end\n").unwrap();
        assert_eq!(ckt.element_counts(), (1, 1, 0, 0, 0));
        assert_eq!(ckt.num_nodes(), 2);
        match &ckt.elements()[0] {
            Element::Resistor { ohms, .. } => assert_eq!(*ohms, 1000.0),
            _ => panic!("expected resistor"),
        }
    }

    #[test]
    fn parse_sources() {
        let text = "\
Vdd vdd 0 DC 2.5
Vin in 0 PULSE(0 2.5 1n 0.1n 0.1n 5n 0)
Iload out 0 PWL(0 0 1n 1u)
.end
";
        let ckt = parse_deck(text).unwrap();
        assert_eq!(ckt.element_counts(), (0, 0, 2, 1, 0));
        match &ckt.elements()[1] {
            Element::Vsrc { wave: SourceWave::Pulse { v1, period, .. }, .. } => {
                assert_eq!(*v1, 2.5);
                assert!(period.is_infinite());
            }
            _ => panic!("expected pulse vsrc"),
        }
    }

    #[test]
    fn parse_mosfet() {
        let ckt = parse_deck("M1 out in 0 TYPE=N W=2u L=0.25u\nM2 out in vdd TYPE=P W=5u\n.end\n")
            .unwrap();
        match &ckt.elements()[0] {
            Element::Mosfet { params, .. } => {
                assert_eq!(params.kind, MosKind::Nmos);
                assert!((params.w - 2e-6).abs() < 1e-18);
            }
            _ => panic!("expected mosfet"),
        }
        match &ckt.elements()[1] {
            Element::Mosfet { params, .. } => assert_eq!(params.kind, MosKind::Pmos),
            _ => panic!("expected mosfet"),
        }
    }

    #[test]
    fn round_trip() {
        let text = "\
R1 a b 100
C1 b 0 1p
Vs a 0 PULSE(0 3 1n 0.2n 0.2n 4n 10n)
M1 b a 0 TYPE=N W=1u L=0.25u
.end
";
        let ckt = parse_deck(text).unwrap();
        let regen = write_deck(&ckt, "t");
        let ckt2 = parse_deck(&regen).unwrap();
        assert_eq!(ckt.element_counts(), ckt2.element_counts());
        assert_eq!(ckt.num_nodes(), ckt2.num_nodes());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_deck("R1 a b 1k\nX9 bad record\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("line 2"));
        assert!(parse_deck("R1 a b -5\n").is_err());
        assert!(parse_deck("V1 a 0 PULSE(1 2 3)\n").is_err());
        assert!(parse_deck("M1 a b 0 TYPE=N\n").is_err());
        assert!(parse_deck("V1 a 0 PWL(1 2 0 1)\n").is_err());
    }

    #[test]
    fn comments_and_dot_cards_skipped() {
        let ckt = parse_deck("* hello\n.tran 1n 10n\nR1 a 0 1\n.end\nR2 b 0 1\n").unwrap();
        // .end stops parsing, so R2 is not read.
        assert_eq!(ckt.element_counts().0, 1);
    }
}
