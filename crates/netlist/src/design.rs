//! Gate-level designs: cell instances, nets, and the annotations the
//! crosstalk flow uses to reduce pessimism (switching windows, logic
//! correlation, tri-state bus membership).

use std::collections::HashMap;

/// Identifier of a net inside a [`Design`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub usize);

/// Identifier of a cell instance inside a [`Design`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstanceId(pub usize);

/// A cell instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    /// Instance name.
    pub name: String,
    /// Library cell name (resolved against the cell library by consumers).
    pub cell: String,
    /// Input nets in pin order.
    pub inputs: Vec<NetId>,
    /// Output net, if the instance drives one.
    pub output: Option<NetId>,
    /// `true` for tri-state drivers (bus design style).
    pub tristate: bool,
}

/// A switching window: the earliest and latest time (seconds) at which a net
/// can transition within a clock cycle.
pub type SwitchingWindow = (f64, f64);

/// A gate-level design.
///
/// # Example
///
/// ```
/// # use pcv_netlist::Design;
/// let mut d = Design::new("blk");
/// let a = d.add_net("a");
/// let z = d.add_net("z");
/// d.add_instance("u1", "INVX4", vec![a], Some(z), false);
/// assert_eq!(d.drivers_of(z).len(), 1);
/// assert_eq!(d.loads_of(a).len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Design {
    name: String,
    net_names: Vec<String>,
    net_by_name: HashMap<String, NetId>,
    instances: Vec<Instance>,
    drivers: Vec<Vec<InstanceId>>,
    loads: Vec<Vec<(InstanceId, usize)>>,
    windows: Vec<Option<SwitchingWindow>>,
    complements: Vec<Option<NetId>>,
    latch_inputs: Vec<bool>,
}

impl Design {
    /// Create an empty design.
    pub fn new(name: impl Into<String>) -> Self {
        Design { name: name.into(), ..Design::default() }
    }

    /// Design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Add a net; names must be unique.
    ///
    /// # Panics
    ///
    /// Panics on duplicate names.
    pub fn add_net(&mut self, name: impl Into<String>) -> NetId {
        let name = name.into();
        let id = NetId(self.net_names.len());
        let prev = self.net_by_name.insert(name.clone(), id);
        assert!(prev.is_none(), "duplicate net name {name:?}");
        self.net_names.push(name);
        self.drivers.push(Vec::new());
        self.loads.push(Vec::new());
        self.windows.push(None);
        self.complements.push(None);
        self.latch_inputs.push(false);
        id
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.net_names.len()
    }

    /// Net name.
    pub fn net_name(&self, id: NetId) -> &str {
        &self.net_names[id.0]
    }

    /// Look up a net by name.
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.net_by_name.get(name).copied()
    }

    /// Add an instance; driver/load maps are updated.
    pub fn add_instance(
        &mut self,
        name: impl Into<String>,
        cell: impl Into<String>,
        inputs: Vec<NetId>,
        output: Option<NetId>,
        tristate: bool,
    ) -> InstanceId {
        let id = InstanceId(self.instances.len());
        if let Some(out) = output {
            self.drivers[out.0].push(id);
        }
        for (pin, inp) in inputs.iter().enumerate() {
            self.loads[inp.0].push((id, pin));
        }
        self.instances.push(Instance {
            name: name.into(),
            cell: cell.into(),
            inputs,
            output,
            tristate,
        });
        id
    }

    /// Number of instances.
    pub fn num_instances(&self) -> usize {
        self.instances.len()
    }

    /// Access an instance.
    pub fn instance(&self, id: InstanceId) -> &Instance {
        &self.instances[id.0]
    }

    /// All instances.
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// Instances driving a net (more than one for tri-state buses).
    pub fn drivers_of(&self, net: NetId) -> &[InstanceId] {
        &self.drivers[net.0]
    }

    /// `(instance, input_pin_index)` pairs loading a net.
    pub fn loads_of(&self, net: NetId) -> &[(InstanceId, usize)] {
        &self.loads[net.0]
    }

    /// Set a net's switching window.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    pub fn set_window(&mut self, net: NetId, min: f64, max: f64) {
        assert!(min <= max, "window min must not exceed max");
        self.windows[net.0] = Some((min, max));
    }

    /// A net's switching window, if annotated.
    pub fn window(&self, net: NetId) -> Option<SwitchingWindow> {
        self.windows[net.0]
    }

    /// Declare two nets logically complementary (e.g. flip-flop Q/QB):
    /// they never switch in the same direction simultaneously.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn set_complementary(&mut self, a: NetId, b: NetId) {
        assert_ne!(a, b, "a net cannot complement itself");
        self.complements[a.0] = Some(b);
        self.complements[b.0] = Some(a);
    }

    /// The complementary net, if declared.
    pub fn complement_of(&self, net: NetId) -> Option<NetId> {
        self.complements[net.0]
    }

    /// Mark a net as a latch/flip-flop data input (a verification hot spot:
    /// glitches here can be captured as wrong state).
    pub fn mark_latch_input(&mut self, net: NetId) {
        self.latch_inputs[net.0] = true;
    }

    /// `true` if the net feeds a latch/flip-flop data pin.
    pub fn is_latch_input(&self, net: NetId) -> bool {
        self.latch_inputs[net.0]
    }

    /// All latch-input nets.
    pub fn latch_input_nets(&self) -> Vec<NetId> {
        (0..self.num_nets()).map(NetId).filter(|&n| self.latch_inputs[n.0]).collect()
    }

    /// `true` if the net is a bus (driven by more than one tri-state driver).
    pub fn is_bus(&self, net: NetId) -> bool {
        self.drivers[net.0].len() > 1
            && self.drivers[net.0].iter().all(|&i| self.instances[i.0].tristate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Design, NetId, NetId, NetId) {
        let mut d = Design::new("t");
        let a = d.add_net("a");
        let z = d.add_net("z");
        let q = d.add_net("q");
        d.add_instance("u1", "INVX2", vec![a], Some(z), false);
        d.add_instance("u2", "BUFX4", vec![z], Some(q), false);
        (d, a, z, q)
    }

    #[test]
    fn driver_and_load_maps() {
        let (d, a, z, q) = sample();
        assert_eq!(d.drivers_of(a), &[]);
        assert_eq!(d.drivers_of(z).len(), 1);
        assert_eq!(d.loads_of(z), &[(InstanceId(1), 0)]);
        assert_eq!(d.loads_of(q), &[]);
        assert_eq!(d.num_instances(), 2);
        assert_eq!(d.instance(InstanceId(0)).cell, "INVX2");
    }

    #[test]
    fn windows() {
        let (mut d, a, _, _) = sample();
        assert_eq!(d.window(a), None);
        d.set_window(a, 1e-9, 2e-9);
        assert_eq!(d.window(a), Some((1e-9, 2e-9)));
    }

    #[test]
    #[should_panic(expected = "window min")]
    fn bad_window_rejected() {
        let (mut d, a, _, _) = sample();
        d.set_window(a, 2e-9, 1e-9);
    }

    #[test]
    fn complements_are_symmetric() {
        let (mut d, a, z, _) = sample();
        d.set_complementary(a, z);
        assert_eq!(d.complement_of(a), Some(z));
        assert_eq!(d.complement_of(z), Some(a));
    }

    #[test]
    fn latch_inputs() {
        let (mut d, _, z, q) = sample();
        assert!(!d.is_latch_input(z));
        d.mark_latch_input(q);
        assert!(d.is_latch_input(q));
        assert_eq!(d.latch_input_nets(), vec![q]);
    }

    #[test]
    fn bus_detection_requires_multiple_tristate_drivers() {
        let mut d = Design::new("bus");
        let b = d.add_net("bus0");
        let i0 = d.add_net("i0");
        let i1 = d.add_net("i1");
        d.add_instance("t0", "TBUFX4", vec![i0], Some(b), true);
        assert!(!d.is_bus(b));
        d.add_instance("t1", "TBUFX8", vec![i1], Some(b), true);
        assert!(d.is_bus(b));
    }

    #[test]
    fn net_lookup() {
        let (d, a, _, _) = sample();
        assert_eq!(d.find_net("a"), Some(a));
        assert_eq!(d.find_net("nope"), None);
        assert_eq!(d.net_name(a), "a");
        assert_eq!(d.num_nets(), 3);
        assert_eq!(d.name(), "t");
    }

    #[test]
    #[should_panic(expected = "duplicate net name")]
    fn duplicate_net_rejected() {
        let mut d = Design::new("t");
        d.add_net("a");
        d.add_net("a");
    }
}
