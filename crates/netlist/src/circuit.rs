//! Flat electrical circuits: named nodes plus R, C, sources and MOSFETs.

use crate::wave::SourceWave;
use std::collections::HashMap;
use std::fmt;

/// A circuit node handle.
///
/// `NodeId::GROUND` is the reference node and is not counted in
/// [`Circuit::num_nodes`]; all other nodes are indexed `0..num_nodes`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The ground (reference) node.
    pub const GROUND: NodeId = NodeId(usize::MAX);

    /// `true` for the ground node.
    pub fn is_ground(self) -> bool {
        self == NodeId::GROUND
    }

    /// Index of a non-ground node.
    ///
    /// # Panics
    ///
    /// Panics when called on ground.
    pub fn index(self) -> usize {
        assert!(!self.is_ground(), "ground node has no index");
        self.0
    }

    /// Index of the node, or `None` for ground.
    pub fn index_opt(self) -> Option<usize> {
        if self.is_ground() {
            None
        } else {
            Some(self.0)
        }
    }

    /// Construct from a raw index (for deserialization).
    pub fn from_index(i: usize) -> Self {
        NodeId(i)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_ground() {
            write!(f, "gnd")
        } else {
            write!(f, "n{}", self.0)
        }
    }
}

/// NMOS or PMOS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MosKind {
    /// N-channel.
    Nmos,
    /// P-channel.
    Pmos,
}

/// Level-1 (Shichman–Hodges) MOSFET parameters for a 0.25 µm-class process.
#[derive(Debug, Clone, PartialEq)]
pub struct MosParams {
    /// Device polarity.
    pub kind: MosKind,
    /// Channel width in meters.
    pub w: f64,
    /// Channel length in meters.
    pub l: f64,
    /// Zero-bias threshold voltage (positive for NMOS, negative for PMOS).
    pub vt0: f64,
    /// Transconductance parameter `KP = µ Cox` in A/V².
    pub kp: f64,
    /// Channel-length modulation (1/V).
    pub lambda: f64,
    /// Gate-oxide capacitance per area (F/m²), used for simple gate caps.
    pub cox: f64,
    /// Source/drain junction + overlap capacitance per width (F/m).
    pub cj_w: f64,
}

impl MosParams {
    /// A representative 0.25 µm NMOS with the given width (in meters).
    pub fn nmos_025(w: f64) -> Self {
        MosParams {
            kind: MosKind::Nmos,
            w,
            l: 0.25e-6,
            vt0: 0.55,
            kp: 170e-6,
            lambda: 0.08,
            cox: 6.0e-3,
            cj_w: 0.6e-9,
        }
    }

    /// A representative 0.25 µm PMOS with the given width (in meters).
    pub fn pmos_025(w: f64) -> Self {
        MosParams {
            kind: MosKind::Pmos,
            w,
            l: 0.25e-6,
            vt0: -0.6,
            kp: 60e-6,
            lambda: 0.1,
            cox: 6.0e-3,
            cj_w: 0.65e-9,
        }
    }

    /// `beta = KP * W / L`, the current-factor of the Level-1 model.
    pub fn beta(&self) -> f64 {
        self.kp * self.w / self.l
    }

    /// Total gate capacitance (area) in farads.
    pub fn gate_cap(&self) -> f64 {
        self.cox * self.w * self.l
    }

    /// Drain/source junction capacitance in farads.
    pub fn junction_cap(&self) -> f64 {
        self.cj_w * self.w
    }
}

/// A circuit element.
#[derive(Debug, Clone, PartialEq)]
pub enum Element {
    /// Linear resistor between two nodes.
    Resistor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Resistance in ohms (must be positive).
        ohms: f64,
    },
    /// Linear capacitor between two nodes.
    Capacitor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Capacitance in farads (must be positive).
        farads: f64,
    },
    /// Independent voltage source (adds an MNA branch current).
    Vsrc {
        /// Positive terminal.
        pos: NodeId,
        /// Negative terminal.
        neg: NodeId,
        /// Waveform.
        wave: SourceWave,
    },
    /// Independent current source (flows from `pos` to `neg` through the
    /// source, i.e. injects into `neg`... follows SPICE convention: positive
    /// current flows from `pos` node through the source to `neg` node).
    Isrc {
        /// Positive terminal.
        pos: NodeId,
        /// Negative terminal.
        neg: NodeId,
        /// Waveform.
        wave: SourceWave,
    },
    /// Level-1 MOSFET.
    Mosfet {
        /// Drain.
        d: NodeId,
        /// Gate.
        g: NodeId,
        /// Source.
        s: NodeId,
        /// Model parameters.
        params: MosParams,
    },
}

/// A flat circuit: a node arena plus an element list.
///
/// Nodes are created on demand by [`Circuit::node`] and identified by name;
/// `"0"` and `"gnd"` map to the ground reference.
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    names: Vec<String>,
    by_name: HashMap<String, NodeId>,
    elements: Vec<Element>,
}

impl Circuit {
    /// The ground node (alias of [`NodeId::GROUND`], for call-site brevity).
    pub const GROUND: NodeId = NodeId::GROUND;

    /// Create an empty circuit.
    pub fn new() -> Self {
        Circuit::default()
    }

    /// Get or create a named node. `"0"` and `"gnd"` return ground.
    pub fn node(&mut self, name: &str) -> NodeId {
        if name == "0" || name.eq_ignore_ascii_case("gnd") {
            return NodeId::GROUND;
        }
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = NodeId(self.names.len());
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Create a fresh anonymous node with a generated unique name.
    pub fn fresh_node(&mut self, prefix: &str) -> NodeId {
        let name = format!("{}${}", prefix, self.names.len());
        self.node(&name)
    }

    /// Look up an existing node by name (without creating it).
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        if name == "0" || name.eq_ignore_ascii_case("gnd") {
            return Some(NodeId::GROUND);
        }
        self.by_name.get(name).copied()
    }

    /// Name of a node.
    pub fn node_name(&self, id: NodeId) -> &str {
        if id.is_ground() {
            "0"
        } else {
            &self.names[id.0]
        }
    }

    /// Number of non-ground nodes.
    pub fn num_nodes(&self) -> usize {
        self.names.len()
    }

    /// All elements in insertion order.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Mutable access to the elements (e.g. to retarget source waveforms
    /// between analyses without rebuilding the circuit).
    pub fn elements_mut(&mut self) -> &mut [Element] {
        &mut self.elements
    }

    /// Add a resistor; returns its element index.
    ///
    /// # Panics
    ///
    /// Panics if `ohms <= 0` or not finite.
    pub fn add_resistor(&mut self, a: NodeId, b: NodeId, ohms: f64) -> usize {
        assert!(ohms > 0.0 && ohms.is_finite(), "resistance must be positive");
        self.push(Element::Resistor { a, b, ohms })
    }

    /// Add a capacitor; returns its element index.
    ///
    /// # Panics
    ///
    /// Panics if `farads <= 0` or not finite.
    pub fn add_capacitor(&mut self, a: NodeId, b: NodeId, farads: f64) -> usize {
        assert!(farads > 0.0 && farads.is_finite(), "capacitance must be positive");
        self.push(Element::Capacitor { a, b, farads })
    }

    /// Add an independent voltage source; returns its element index.
    pub fn add_vsrc(&mut self, pos: NodeId, neg: NodeId, wave: SourceWave) -> usize {
        self.push(Element::Vsrc { pos, neg, wave })
    }

    /// Add an independent current source; returns its element index.
    pub fn add_isrc(&mut self, pos: NodeId, neg: NodeId, wave: SourceWave) -> usize {
        self.push(Element::Isrc { pos, neg, wave })
    }

    /// Add a MOSFET; returns its element index.
    pub fn add_mosfet(&mut self, d: NodeId, g: NodeId, s: NodeId, params: MosParams) -> usize {
        self.push(Element::Mosfet { d, g, s, params })
    }

    fn push(&mut self, e: Element) -> usize {
        self.elements.push(e);
        self.elements.len() - 1
    }

    /// Count of elements by a coarse category: `(r, c, v, i, mos)`.
    pub fn element_counts(&self) -> (usize, usize, usize, usize, usize) {
        let mut counts = (0, 0, 0, 0, 0);
        for e in &self.elements {
            match e {
                Element::Resistor { .. } => counts.0 += 1,
                Element::Capacitor { .. } => counts.1 += 1,
                Element::Vsrc { .. } => counts.2 += 1,
                Element::Isrc { .. } => counts.3 += 1,
                Element::Mosfet { .. } => counts.4 += 1,
            }
        }
        counts
    }

    /// Merge another circuit into this one, remapping its nodes by name.
    /// Nodes with equal names are connected; returns nothing because node
    /// identity is name-based.
    pub fn merge(&mut self, other: &Circuit) {
        let map: Vec<NodeId> = (0..other.num_nodes()).map(|i| self.node(&other.names[i])).collect();
        let remap = |id: NodeId| -> NodeId {
            if id.is_ground() {
                NodeId::GROUND
            } else {
                map[id.0]
            }
        };
        for e in &other.elements {
            let e2 = match e {
                Element::Resistor { a, b, ohms } => {
                    Element::Resistor { a: remap(*a), b: remap(*b), ohms: *ohms }
                }
                Element::Capacitor { a, b, farads } => {
                    Element::Capacitor { a: remap(*a), b: remap(*b), farads: *farads }
                }
                Element::Vsrc { pos, neg, wave } => {
                    Element::Vsrc { pos: remap(*pos), neg: remap(*neg), wave: wave.clone() }
                }
                Element::Isrc { pos, neg, wave } => {
                    Element::Isrc { pos: remap(*pos), neg: remap(*neg), wave: wave.clone() }
                }
                Element::Mosfet { d, g, s, params } => Element::Mosfet {
                    d: remap(*d),
                    g: remap(*g),
                    s: remap(*s),
                    params: params.clone(),
                },
            };
            self.elements.push(e2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_identity_is_name_based() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let a2 = c.node("a");
        let b = c.node("b");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(c.num_nodes(), 2);
        assert_eq!(c.node_name(a), "a");
    }

    #[test]
    fn ground_aliases() {
        let mut c = Circuit::new();
        assert!(c.node("0").is_ground());
        assert!(c.node("gnd").is_ground());
        assert!(c.node("GND").is_ground());
        assert_eq!(c.num_nodes(), 0);
        assert_eq!(c.node_name(NodeId::GROUND), "0");
        assert_eq!(c.find_node("0"), Some(NodeId::GROUND));
        assert_eq!(c.find_node("missing"), None);
    }

    #[test]
    fn fresh_nodes_are_unique() {
        let mut c = Circuit::new();
        let x = c.fresh_node("t");
        let y = c.fresh_node("t");
        assert_ne!(x, y);
    }

    #[test]
    fn element_building_and_counts() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_resistor(a, b, 100.0);
        c.add_capacitor(b, Circuit::GROUND, 1e-15);
        c.add_vsrc(a, Circuit::GROUND, SourceWave::Dc(3.0));
        c.add_isrc(b, Circuit::GROUND, SourceWave::Dc(1e-6));
        c.add_mosfet(a, b, Circuit::GROUND, MosParams::nmos_025(1e-6));
        assert_eq!(c.element_counts(), (1, 1, 1, 1, 1));
        assert_eq!(c.elements().len(), 5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_resistance() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_resistor(a, Circuit::GROUND, 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_capacitance() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_capacitor(a, Circuit::GROUND, -1e-15);
    }

    #[test]
    fn ground_has_no_index() {
        assert_eq!(NodeId::GROUND.index_opt(), None);
        assert_eq!(NodeId::from_index(3).index(), 3);
    }

    #[test]
    #[should_panic(expected = "ground node has no index")]
    fn ground_index_panics() {
        let _ = NodeId::GROUND.index();
    }

    #[test]
    fn merge_connects_by_name() {
        let mut a = Circuit::new();
        let n1 = a.node("x");
        a.add_resistor(n1, Circuit::GROUND, 50.0);

        let mut b = Circuit::new();
        let n2 = b.node("x");
        let n3 = b.node("y");
        b.add_resistor(n2, n3, 25.0);

        a.merge(&b);
        assert_eq!(a.num_nodes(), 2); // x shared, y added
        assert_eq!(a.elements().len(), 2);
    }

    #[test]
    fn mos_param_helpers() {
        let p = MosParams::nmos_025(2.5e-6);
        assert!(p.beta() > 0.0);
        assert!(p.gate_cap() > 0.0);
        assert!(p.junction_cap() > 0.0);
        let q = MosParams::pmos_025(5e-6);
        assert_eq!(q.kind, MosKind::Pmos);
        assert!(q.vt0 < 0.0);
    }

    #[test]
    fn display_of_nodes() {
        assert_eq!(format!("{}", NodeId::GROUND), "gnd");
        assert_eq!(format!("{}", NodeId::from_index(4)), "n4");
    }
}
