//! ECO (engineering change order) deltas between two parasitic databases.
//!
//! [`EcoDelta::diff`] compares two [`ParasiticDb`]s **by net name** and
//! produces a typed description of every electrical difference: nets
//! added, nets removed, per-net RC edits ([`NetDelta`]) and coupling-cap
//! edits ([`CouplingEdit`]). The diff is the front end of incremental
//! re-verification: its [`EcoDelta::touched_nets`] seed the coupling-aware
//! dirty-set computation, so it must be *exact* —
//!
//! * values compare **bit-for-bit** (`f64::to_bits`), never with a
//!   tolerance: the engine's cluster fingerprints hash exact bits, so any
//!   bit flip can change a verdict and must dirty its clusters;
//! * element lists compare as **multisets** — a SPEF that lists the same
//!   resistors or coupling caps in a different order is electrically
//!   identical and produces no edit (parallel duplicates keep their
//!   multiplicity);
//! * coupling endpoints are **canonicalized** (lexicographically smaller
//!   `(net, node)` first), so `*CC a 1 b 2 c` and `*CC b 2 a 1 c` are the
//!   same capacitor and never a phantom edit;
//! * **zero-valued caps are real**: a coupling entry of `0.0` farads is
//!   electrically inert but still enters the engine's canonical
//!   fingerprints, so adding or dropping one is a reportable edit.

use crate::parasitics::{NetParasitics, ParasiticDb};
use std::collections::{BTreeMap, BTreeSet};

/// One endpoint of a coupling capacitor, by net name and node index.
pub type CouplingEnd = (String, usize);

/// A multiset-valued edit: the old and new capacitance/resistance values
/// observed under one key, each sorted by `f64::total_cmp`. Either side
/// may be empty (pure addition / removal); both non-empty means the
/// values under the key changed.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueEdit {
    /// Values in the old database (sorted, possibly empty).
    pub old: Vec<f64>,
    /// Values in the new database (sorted, possibly empty).
    pub new: Vec<f64>,
}

/// A resistor edit within one net, keyed by the stored `(a, b)` node pair.
#[derive(Debug, Clone, PartialEq)]
pub struct ResEdit {
    /// First node of the resistor as stored.
    pub a: usize,
    /// Second node of the resistor as stored.
    pub b: usize,
    /// Old vs new resistance values (ohms) under this node pair.
    pub values: ValueEdit,
}

/// A ground-capacitor edit within one net, keyed by node.
#[derive(Debug, Clone, PartialEq)]
pub struct GcapEdit {
    /// The node the capacitor hangs off.
    pub node: usize,
    /// Old vs new capacitance values (farads) at this node.
    pub values: ValueEdit,
}

/// All intra-net differences for one net present in both databases.
#[derive(Debug, Clone, PartialEq)]
pub struct NetDelta {
    /// Net name (the diff key).
    pub name: String,
    /// `Some((old, new))` when the node count changed.
    pub nodes: Option<(usize, usize)>,
    /// The set of receiver (load) nodes changed.
    pub loads_changed: bool,
    /// Resistor multiset edits.
    pub res_edits: Vec<ResEdit>,
    /// Ground-capacitor multiset edits.
    pub gcap_edits: Vec<GcapEdit>,
}

impl NetDelta {
    /// Whether this record carries any difference.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_none()
            && !self.loads_changed
            && self.res_edits.is_empty()
            && self.gcap_edits.is_empty()
    }
}

/// A coupling-capacitor edit, keyed by the canonical (sorted) endpoint
/// pair. Covers couplings incident to added or removed nets as well.
#[derive(Debug, Clone, PartialEq)]
pub struct CouplingEdit {
    /// Lexicographically smaller endpoint.
    pub a: CouplingEnd,
    /// Lexicographically larger endpoint.
    pub b: CouplingEnd,
    /// Old vs new capacitance values (farads) between these endpoints.
    pub values: ValueEdit,
}

/// A typed ECO delta between two parasitic databases.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EcoDelta {
    /// Nets present only in the new database (sorted by name).
    pub added: Vec<String>,
    /// Nets present only in the old database (sorted by name).
    pub removed: Vec<String>,
    /// Nets present in both whose own RC content differs (sorted by name).
    pub reparasitized: Vec<NetDelta>,
    /// Coupling-cap differences (sorted by canonical endpoint pair).
    pub coupling_edits: Vec<CouplingEdit>,
}

/// Multiset of `f64` values keyed by `K`, with bit-exact comparison.
fn value_map<K: Ord, I: Iterator<Item = (K, f64)>>(items: I) -> BTreeMap<K, Vec<f64>> {
    let mut map: BTreeMap<K, Vec<f64>> = BTreeMap::new();
    for (k, v) in items {
        map.entry(k).or_default().push(v);
    }
    for vals in map.values_mut() {
        vals.sort_by(f64::total_cmp);
    }
    map
}

/// Bit-exact equality of two sorted value multisets.
fn same_values(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Merge two keyed multisets into the keys where they differ bit-for-bit.
///
/// A sorted merge-join over the two maps: unchanged keys (the vast
/// majority in an ECO diff) are visited once and never cloned, so the
/// cost is linear in the databases and allocation is proportional to the
/// *edit*, not the chip.
fn multiset_edits<K: Ord>(
    old: BTreeMap<K, Vec<f64>>,
    new: BTreeMap<K, Vec<f64>>,
) -> Vec<(K, ValueEdit)> {
    let mut edits = Vec::new();
    let mut old_it = old.into_iter().peekable();
    let mut new_it = new.into_iter().peekable();
    loop {
        match (old_it.peek(), new_it.peek()) {
            (Some((ko, _)), Some((kn, _))) => match ko.cmp(kn) {
                std::cmp::Ordering::Equal => {
                    let (k, o) = old_it.next().expect("peeked");
                    let (_, n) = new_it.next().expect("peeked");
                    if !same_values(&o, &n) {
                        edits.push((k, ValueEdit { old: o, new: n }));
                    }
                }
                std::cmp::Ordering::Less => {
                    let (k, o) = old_it.next().expect("peeked");
                    edits.push((k, ValueEdit { old: o, new: Vec::new() }));
                }
                std::cmp::Ordering::Greater => {
                    let (k, n) = new_it.next().expect("peeked");
                    edits.push((k, ValueEdit { old: Vec::new(), new: n }));
                }
            },
            (Some(_), None) => {
                let (k, o) = old_it.next().expect("peeked");
                edits.push((k, ValueEdit { old: o, new: Vec::new() }));
            }
            (None, Some(_)) => {
                let (k, n) = new_it.next().expect("peeked");
                edits.push((k, ValueEdit { old: Vec::new(), new: n }));
            }
            (None, None) => break,
        }
    }
    edits
}

/// Fast path: the two views of a net are stored bit-identically in the
/// same order — the overwhelmingly common case when a re-extraction only
/// edits a handful of nets. Order-sensitive, so a `false` only means
/// "run the full multiset diff", never "different".
fn same_net_bits(old: &NetParasitics, new: &NetParasitics) -> bool {
    old.num_nodes() == new.num_nodes()
        && old.load_nodes() == new.load_nodes()
        && old.resistors().len() == new.resistors().len()
        && old.ground_caps().len() == new.ground_caps().len()
        && old
            .resistors()
            .iter()
            .zip(new.resistors())
            .all(|(x, y)| x.0 == y.0 && x.1 == y.1 && x.2.to_bits() == y.2.to_bits())
        && old
            .ground_caps()
            .iter()
            .zip(new.ground_caps())
            .all(|(x, y)| x.0 == y.0 && x.1.to_bits() == y.1.to_bits())
}

/// Diff the intra-net content of one net present in both databases.
fn net_delta(name: &str, old: &NetParasitics, new: &NetParasitics) -> NetDelta {
    let nodes = (old.num_nodes() != new.num_nodes()).then(|| (old.num_nodes(), new.num_nodes()));
    let loads_old: BTreeSet<usize> = old.load_nodes().iter().copied().collect();
    let loads_new: BTreeSet<usize> = new.load_nodes().iter().copied().collect();
    let res_edits = multiset_edits(
        value_map(old.resistors().iter().map(|&(a, b, r)| ((a, b), r))),
        value_map(new.resistors().iter().map(|&(a, b, r)| ((a, b), r))),
    )
    .into_iter()
    .map(|((a, b), values)| ResEdit { a, b, values })
    .collect();
    let gcap_edits = multiset_edits(
        value_map(old.ground_caps().iter().copied()),
        value_map(new.ground_caps().iter().copied()),
    )
    .into_iter()
    .map(|(node, values)| GcapEdit { node, values })
    .collect();
    NetDelta {
        name: name.to_owned(),
        nodes,
        loads_changed: loads_old != loads_new,
        res_edits,
        gcap_edits,
    }
}

/// Canonically keyed coupling multiset of a whole database:
/// `(smaller endpoint, larger endpoint) -> sorted farads`.
fn coupling_map(db: &ParasiticDb) -> BTreeMap<(CouplingEnd, CouplingEnd), Vec<f64>> {
    value_map(db.couplings().iter().map(|c| {
        let ea: CouplingEnd = (db.net(c.a.net).name().to_owned(), c.a.node);
        let eb: CouplingEnd = (db.net(c.b.net).name().to_owned(), c.b.node);
        let key = if ea <= eb { (ea, eb) } else { (eb, ea) };
        (key, c.farads)
    }))
}

/// Fast path over the coupling lists: bit-identical entries in the same
/// stored order (canonicalizing each entry's endpoint orientation). Like
/// [`same_net_bits`], `false` only means "build the canonical maps".
fn same_coupling_bits(old: &ParasiticDb, new: &ParasiticDb) -> bool {
    fn key<'a>(
        db: &'a ParasiticDb,
        c: &crate::CouplingCap,
    ) -> ((&'a str, usize), (&'a str, usize)) {
        let ea = (db.net(c.a.net).name(), c.a.node);
        let eb = (db.net(c.b.net).name(), c.b.node);
        if ea <= eb {
            (ea, eb)
        } else {
            (eb, ea)
        }
    }
    old.couplings().len() == new.couplings().len()
        && old
            .couplings()
            .iter()
            .zip(new.couplings())
            .all(|(o, n)| key(old, o) == key(new, n) && o.farads.to_bits() == n.farads.to_bits())
}

impl EcoDelta {
    /// Compute the typed delta between two databases, comparing by net
    /// name with bit-exact values and multiset semantics (see the module
    /// docs for the exact rules).
    pub fn diff(old: &ParasiticDb, new: &ParasiticDb) -> EcoDelta {
        let old_names: BTreeMap<&str, _> = old.iter().map(|(_, n)| (n.name(), n)).collect();
        let new_names: BTreeMap<&str, _> = new.iter().map(|(_, n)| (n.name(), n)).collect();

        let added = new_names
            .keys()
            .filter(|k| !old_names.contains_key(*k))
            .map(|k| (*k).to_owned())
            .collect();
        let removed = old_names
            .keys()
            .filter(|k| !new_names.contains_key(*k))
            .map(|k| (*k).to_owned())
            .collect();
        let reparasitized = old_names
            .iter()
            .filter_map(|(name, o)| {
                let n = new_names.get(name)?;
                if same_net_bits(o, n) {
                    return None;
                }
                let d = net_delta(name, o, n);
                (!d.is_empty()).then_some(d)
            })
            .collect();
        let coupling_edits = if same_coupling_bits(old, new) {
            Vec::new()
        } else {
            multiset_edits(coupling_map(old), coupling_map(new))
                .into_iter()
                .map(|((a, b), values)| CouplingEdit { a, b, values })
                .collect()
        };

        EcoDelta { added, removed, reparasitized, coupling_edits }
    }

    /// `true` when the two databases are electrically identical (a no-op
    /// rewrite: same nets, same RC bits, same coupling multiset).
    pub fn is_empty(&self) -> bool {
        self.added.is_empty()
            && self.removed.is_empty()
            && self.reparasitized.is_empty()
            && self.coupling_edits.is_empty()
    }

    /// Every net name an edit touches: added and removed nets,
    /// re-parasitized nets, and **both** endpoints of every coupling edit.
    /// This is the seed set for the coupling-aware blast radius.
    pub fn touched_nets(&self) -> BTreeSet<String> {
        let mut touched: BTreeSet<String> = BTreeSet::new();
        touched.extend(self.added.iter().cloned());
        touched.extend(self.removed.iter().cloned());
        touched.extend(self.reparasitized.iter().map(|d| d.name.clone()));
        for e in &self.coupling_edits {
            touched.insert(e.a.0.clone());
            touched.insert(e.b.0.clone());
        }
        touched
    }

    /// Total number of element-level edits (a size measure for logs).
    pub fn num_edits(&self) -> usize {
        self.added.len()
            + self.removed.len()
            + self
                .reparasitized
                .iter()
                .map(|d| {
                    d.res_edits.len()
                        + d.gcap_edits.len()
                        + usize::from(d.nodes.is_some())
                        + usize::from(d.loads_changed)
                })
                .sum::<usize>()
            + self.coupling_edits.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parasitics::NetNodeRef;
    use crate::PNetId;

    /// Two coupled two-node nets plus one zero-cap coupling.
    fn fixture() -> ParasiticDb {
        let mut db = ParasiticDb::new();
        for name in ["a", "b", "c"] {
            let mut n = NetParasitics::new(name);
            let n1 = n.add_node();
            n.add_resistor(0, n1, 100.0);
            n.add_ground_cap(n1, 2e-15);
            n.mark_load(n1);
            db.add_net(n);
        }
        let (a, b, c) = (PNetId(0), PNetId(1), PNetId(2));
        db.add_coupling(NetNodeRef { net: a, node: 1 }, NetNodeRef { net: b, node: 1 }, 5e-15);
        // Zero-cap entry: electrically inert, fingerprint-relevant.
        db.add_coupling(NetNodeRef { net: b, node: 1 }, NetNodeRef { net: c, node: 1 }, 0.0);
        db
    }

    #[test]
    fn identical_databases_diff_empty() {
        let db = fixture();
        let d = EcoDelta::diff(&db, &db.clone());
        assert!(d.is_empty(), "{d:?}");
        assert_eq!(d.num_edits(), 0);
        assert!(d.touched_nets().is_empty());
    }

    #[test]
    fn reordered_elements_are_not_edits() {
        // Same electrical content, different emission order: resistors,
        // ground caps and couplings shuffled, coupling endpoints swapped.
        let old = fixture();
        let mut new = ParasiticDb::new();
        for name in ["a", "b", "c"] {
            let mut n = NetParasitics::new(name);
            let n1 = n.add_node();
            n.add_ground_cap(n1, 2e-15);
            n.add_resistor(0, n1, 100.0);
            n.mark_load(n1);
            new.add_net(n);
        }
        let (a, b, c) = (PNetId(0), PNetId(1), PNetId(2));
        // Emitted in the opposite order, with endpoints flipped.
        new.add_coupling(NetNodeRef { net: c, node: 1 }, NetNodeRef { net: b, node: 1 }, 0.0);
        new.add_coupling(NetNodeRef { net: b, node: 1 }, NetNodeRef { net: a, node: 1 }, 5e-15);
        let d = EcoDelta::diff(&old, &new);
        assert!(d.is_empty(), "reordering must not produce phantom edits: {d:?}");
    }

    #[test]
    fn value_edits_are_bit_exact() {
        let old = fixture();
        let mut new = fixture();
        // A 1-ulp resistance nudge must register.
        let r = new.net(PNetId(0)).resistors()[0];
        let nudged = f64::from_bits(r.2.to_bits() + 1);
        *new.net_mut(PNetId(0)) = {
            let mut n = NetParasitics::new("a");
            let n1 = n.add_node();
            n.add_resistor(0, n1, nudged);
            n.add_ground_cap(n1, 2e-15);
            n.mark_load(n1);
            n
        };
        let d = EcoDelta::diff(&old, &new);
        assert_eq!(d.reparasitized.len(), 1);
        assert_eq!(d.reparasitized[0].name, "a");
        assert_eq!(d.reparasitized[0].res_edits.len(), 1);
        assert_eq!(d.touched_nets(), BTreeSet::from(["a".to_owned()]));
    }

    #[test]
    fn zero_cap_coupling_changes_are_edits() {
        let old = fixture();
        // Dropping the zero-cap b<->c entry is electrically inert but
        // changes the canonical fingerprints of b and c — it must report.
        let mut new = ParasiticDb::new();
        for name in ["a", "b", "c"] {
            let mut n = NetParasitics::new(name);
            let n1 = n.add_node();
            n.add_resistor(0, n1, 100.0);
            n.add_ground_cap(n1, 2e-15);
            n.mark_load(n1);
            new.add_net(n);
        }
        new.add_coupling(
            NetNodeRef { net: PNetId(0), node: 1 },
            NetNodeRef { net: PNetId(1), node: 1 },
            5e-15,
        );
        let d = EcoDelta::diff(&old, &new);
        assert_eq!(d.coupling_edits.len(), 1);
        let e = &d.coupling_edits[0];
        assert_eq!((e.a.0.as_str(), e.b.0.as_str()), ("b", "c"));
        assert_eq!(e.values.old, vec![0.0]);
        assert!(e.values.new.is_empty());
        assert_eq!(d.touched_nets(), BTreeSet::from(["b".to_owned(), "c".to_owned()]));
    }

    #[test]
    fn added_and_removed_nets_with_couplings() {
        let old = fixture();
        let mut new = fixture();
        let mut extra = NetParasitics::new("d");
        let d1 = extra.add_node();
        extra.add_resistor(0, d1, 50.0);
        let did = new.add_net(extra);
        new.add_coupling(
            NetNodeRef { net: did, node: 1 },
            NetNodeRef { net: PNetId(0), node: 1 },
            1e-15,
        );
        let d = EcoDelta::diff(&old, &new);
        assert_eq!(d.added, vec!["d".to_owned()]);
        assert!(d.removed.is_empty());
        // The new net's coupling to "a" is an edit touching both ends.
        assert_eq!(d.coupling_edits.len(), 1);
        assert!(d.touched_nets().contains("a"));
        assert!(d.touched_nets().contains("d"));
        // Reverse direction: same delta classified as a removal.
        let r = EcoDelta::diff(&new, &old);
        assert_eq!(r.removed, vec!["d".to_owned()]);
    }

    #[test]
    fn parallel_duplicates_keep_multiplicity() {
        // Two identical resistors in parallel vs one: a multiset diff.
        let mut old = ParasiticDb::new();
        let mut n = NetParasitics::new("a");
        let n1 = n.add_node();
        n.add_resistor(0, n1, 100.0);
        n.add_resistor(0, n1, 100.0);
        old.add_net(n);
        let mut new = ParasiticDb::new();
        let mut n = NetParasitics::new("a");
        let n1 = n.add_node();
        n.add_resistor(0, n1, 100.0);
        new.add_net(n);
        let d = EcoDelta::diff(&old, &new);
        assert_eq!(d.reparasitized.len(), 1);
        let e = &d.reparasitized[0].res_edits[0];
        assert_eq!(e.values.old.len(), 2);
        assert_eq!(e.values.new.len(), 1);
    }

    #[test]
    fn spef_round_trip_produces_no_phantom_edits() {
        // The ECO front door: a database (with a zero-cap coupling) that
        // goes out through the SPEF writer and back through the parser
        // must diff empty against itself.
        let db = fixture();
        let text = crate::spef::write_spef(&db);
        let back = crate::spef::parse_spef(&text).expect("round-trip parses");
        assert!(EcoDelta::diff(&db, &back).is_empty());
    }
}
