//! Time-domain stimulus waveforms for independent sources.

/// A source waveform: the value of an independent voltage or current source
/// as a function of time.
///
/// # Example
///
/// ```
/// # use pcv_netlist::SourceWave;
/// let w = SourceWave::step(0.0, 3.0, 1e-9, 0.2e-9);
/// assert_eq!(w.value_at(0.0), 0.0);
/// assert!((w.value_at(1.1e-9) - 1.5).abs() < 1e-9);
/// assert_eq!(w.value_at(5e-9), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum SourceWave {
    /// Constant value.
    Dc(f64),
    /// SPICE-style pulse.
    Pulse {
        /// Initial value.
        v0: f64,
        /// Pulsed value.
        v1: f64,
        /// Delay before the first edge.
        delay: f64,
        /// Rise time (0 treated as 1 fs).
        rise: f64,
        /// Fall time (0 treated as 1 fs).
        fall: f64,
        /// Pulse width at `v1`.
        width: f64,
        /// Period; `f64::INFINITY` for a single pulse.
        period: f64,
    },
    /// Piecewise-linear waveform as `(time, value)` breakpoints sorted by
    /// time; constant extrapolation outside the range.
    Pwl(Vec<(f64, f64)>),
}

const MIN_EDGE: f64 = 1e-15;

impl SourceWave {
    /// A single rising (or falling) step: `v0` until `delay`, ramping
    /// linearly to `v1` over `rise`.
    pub fn step(v0: f64, v1: f64, delay: f64, rise: f64) -> Self {
        SourceWave::Pwl(vec![(delay, v0), (delay + rise.max(MIN_EDGE), v1)])
    }

    /// Evaluate the waveform at time `t` (seconds).
    pub fn value_at(&self, t: f64) -> f64 {
        match self {
            SourceWave::Dc(v) => *v,
            SourceWave::Pulse { v0, v1, delay, rise, fall, width, period } => {
                if t < *delay {
                    return *v0;
                }
                let rise = rise.max(MIN_EDGE);
                let fall = fall.max(MIN_EDGE);
                let mut tau = t - delay;
                if period.is_finite() && *period > 0.0 {
                    tau %= period;
                }
                if tau < rise {
                    v0 + (v1 - v0) * tau / rise
                } else if tau < rise + width {
                    *v1
                } else if tau < rise + width + fall {
                    v1 + (v0 - v1) * (tau - rise - width) / fall
                } else {
                    *v0
                }
            }
            SourceWave::Pwl(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                if t >= points[points.len() - 1].0 {
                    return points[points.len() - 1].1;
                }
                // Binary search for the enclosing segment.
                let idx = points.partition_point(|&(pt, _)| pt <= t);
                let (t0, v0) = points[idx - 1];
                let (t1, v1) = points[idx];
                if t1 <= t0 {
                    return v1;
                }
                v0 + (v1 - v0) * (t - t0) / (t1 - t0)
            }
        }
    }

    /// Earliest time at which the waveform can change (used to pick
    /// breakpoints for the transient integrator). `None` for DC.
    pub fn breakpoints(&self) -> Vec<f64> {
        match self {
            SourceWave::Dc(_) => Vec::new(),
            SourceWave::Pulse { delay, rise, fall, width, period, .. } => {
                let rise = rise.max(MIN_EDGE);
                let fall = fall.max(MIN_EDGE);
                let mut pts =
                    vec![*delay, delay + rise, delay + rise + width, delay + rise + width + fall];
                if period.is_finite() && *period > 0.0 {
                    let base = pts.clone();
                    for k in 1..4 {
                        pts.extend(base.iter().map(|p| p + k as f64 * period));
                    }
                }
                pts
            }
            SourceWave::Pwl(points) => points.iter().map(|&(t, _)| t).collect(),
        }
    }

    /// The DC (t → -∞ / t = 0⁻) value, used for the operating point.
    pub fn dc_value(&self) -> f64 {
        match self {
            SourceWave::Dc(v) => *v,
            SourceWave::Pulse { v0, .. } => *v0,
            SourceWave::Pwl(points) => points.first().map_or(0.0, |&(_, v)| v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_constant() {
        let w = SourceWave::Dc(2.5);
        assert_eq!(w.value_at(0.0), 2.5);
        assert_eq!(w.value_at(1.0), 2.5);
        assert_eq!(w.dc_value(), 2.5);
        assert!(w.breakpoints().is_empty());
    }

    #[test]
    fn pulse_shape() {
        let w = SourceWave::Pulse {
            v0: 0.0,
            v1: 3.0,
            delay: 1.0,
            rise: 1.0,
            fall: 2.0,
            width: 3.0,
            period: f64::INFINITY,
        };
        assert_eq!(w.value_at(0.5), 0.0);
        assert_eq!(w.value_at(1.5), 1.5); // mid-rise
        assert_eq!(w.value_at(3.0), 3.0); // plateau
        assert_eq!(w.value_at(6.0), 1.5); // mid-fall
        assert_eq!(w.value_at(10.0), 0.0);
        assert_eq!(w.dc_value(), 0.0);
    }

    #[test]
    fn pulse_repeats_with_period() {
        let w = SourceWave::Pulse {
            v0: 0.0,
            v1: 1.0,
            delay: 0.0,
            rise: 0.1,
            fall: 0.1,
            width: 0.3,
            period: 1.0,
        };
        assert!((w.value_at(0.2) - 1.0).abs() < 1e-12);
        assert!((w.value_at(1.2) - 1.0).abs() < 1e-12);
        assert!((w.value_at(2.7) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn pwl_interpolates_and_clamps() {
        let w = SourceWave::Pwl(vec![(1.0, 0.0), (2.0, 2.0), (4.0, -2.0)]);
        assert_eq!(w.value_at(0.0), 0.0);
        assert_eq!(w.value_at(1.5), 1.0);
        assert_eq!(w.value_at(3.0), 0.0);
        assert_eq!(w.value_at(9.0), -2.0);
        assert_eq!(w.dc_value(), 0.0);
        assert_eq!(w.breakpoints(), vec![1.0, 2.0, 4.0]);
    }

    #[test]
    fn empty_pwl_is_zero() {
        let w = SourceWave::Pwl(vec![]);
        assert_eq!(w.value_at(1.0), 0.0);
        assert_eq!(w.dc_value(), 0.0);
    }

    #[test]
    fn step_constructor() {
        let w = SourceWave::step(3.0, 0.0, 2e-9, 0.5e-9);
        assert_eq!(w.value_at(0.0), 3.0);
        assert!((w.value_at(2.25e-9) - 1.5).abs() < 1e-9);
        assert_eq!(w.value_at(1.0), 0.0);
    }

    #[test]
    fn zero_rise_does_not_divide_by_zero() {
        let w = SourceWave::step(0.0, 1.0, 0.0, 0.0);
        assert!(w.value_at(1e-12).is_finite());
        assert_eq!(w.value_at(1e-9), 1.0);
    }
}
