//! Sampled waveforms and the measurements crosstalk verification needs:
//! peak glitch extraction, threshold crossings, 50 % delays and 10–90 %
//! slews.

/// A sampled waveform: strictly increasing times with one value per sample.
///
/// # Example
///
/// ```
/// # use pcv_netlist::Waveform;
/// let w = Waveform::from_samples(vec![0.0, 1.0, 2.0], vec![0.0, 1.0, 0.0]);
/// assert_eq!(w.value_at(0.5), 0.5);
/// let (t, v) = w.peak_deviation(0.0);
/// assert_eq!((t, v), (1.0, 1.0));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Waveform {
    t: Vec<f64>,
    v: Vec<f64>,
}

impl Waveform {
    /// Create from parallel sample arrays.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or times are not strictly increasing.
    pub fn from_samples(t: Vec<f64>, v: Vec<f64>) -> Self {
        assert_eq!(t.len(), v.len(), "waveform arrays must have equal length");
        assert!(t.windows(2).all(|w| w[1] > w[0]), "waveform times must be strictly increasing");
        Waveform { t, v }
    }

    /// An empty waveform.
    pub fn new() -> Self {
        Waveform::default()
    }

    /// Append a sample.
    ///
    /// # Panics
    ///
    /// Panics if `t` does not exceed the last sample time.
    pub fn push(&mut self, t: f64, v: f64) {
        if let Some(&last) = self.t.last() {
            assert!(t > last, "sample times must be strictly increasing");
        }
        self.t.push(t);
        self.v.push(v);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.t.len()
    }

    /// `true` when no samples are stored.
    pub fn is_empty(&self) -> bool {
        self.t.is_empty()
    }

    /// Sample times.
    pub fn times(&self) -> &[f64] {
        &self.t
    }

    /// Sample values.
    pub fn values(&self) -> &[f64] {
        &self.v
    }

    /// Linearly interpolated value at time `t` (clamped at the ends).
    ///
    /// # Panics
    ///
    /// Panics on an empty waveform.
    pub fn value_at(&self, t: f64) -> f64 {
        assert!(!self.is_empty(), "empty waveform");
        if t <= self.t[0] {
            return self.v[0];
        }
        if t >= *self.t.last().expect("non-empty") {
            return *self.v.last().expect("non-empty");
        }
        let idx = self.t.partition_point(|&x| x <= t);
        let (t0, v0) = (self.t[idx - 1], self.v[idx - 1]);
        let (t1, v1) = (self.t[idx], self.v[idx]);
        v0 + (v1 - v0) * (t - t0) / (t1 - t0)
    }

    /// Largest value and when it occurs.
    ///
    /// # Panics
    ///
    /// Panics on an empty waveform.
    pub fn max(&self) -> (f64, f64) {
        assert!(!self.is_empty(), "empty waveform");
        let (i, v) = self
            .v
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite samples"))
            .expect("non-empty");
        (self.t[i], *v)
    }

    /// Smallest value and when it occurs.
    ///
    /// # Panics
    ///
    /// Panics on an empty waveform.
    pub fn min(&self) -> (f64, f64) {
        assert!(!self.is_empty(), "empty waveform");
        let (i, v) = self
            .v
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite samples"))
            .expect("non-empty");
        (self.t[i], *v)
    }

    /// Largest *absolute deviation* from a baseline: `(time, signed peak)`.
    /// This is the crosstalk "peak glitch" measurement — for a victim held
    /// at 0 V the baseline is 0, for one held at Vdd the baseline is Vdd.
    ///
    /// # Panics
    ///
    /// Panics on an empty waveform.
    pub fn peak_deviation(&self, baseline: f64) -> (f64, f64) {
        assert!(!self.is_empty(), "empty waveform");
        let (i, _) = self
            .v
            .iter()
            .enumerate()
            .max_by(|a, b| {
                (a.1 - baseline).abs().partial_cmp(&(b.1 - baseline).abs()).expect("finite samples")
            })
            .expect("non-empty");
        (self.t[i], self.v[i] - baseline)
    }

    /// First time after `after` at which the waveform crosses `level` in the
    /// given direction (linearly interpolated), or `None`.
    pub fn crossing(&self, level: f64, rising: bool, after: f64) -> Option<f64> {
        for w in 0..self.t.len().saturating_sub(1) {
            let (t0, t1) = (self.t[w], self.t[w + 1]);
            if t1 < after {
                continue;
            }
            let (v0, v1) = (self.v[w], self.v[w + 1]);
            let crosses =
                if rising { v0 < level && v1 >= level } else { v0 > level && v1 <= level };
            if crosses {
                let tc = t0 + (t1 - t0) * (level - v0) / (v1 - v0);
                if tc >= after {
                    return Some(tc);
                }
            }
        }
        None
    }

    /// 50 % propagation delay against a reference waveform: the time between
    /// the reference crossing `0.5 * vdd` and this waveform crossing it, in
    /// the given directions.
    pub fn delay_50(
        &self,
        reference: &Waveform,
        vdd: f64,
        ref_rising: bool,
        out_rising: bool,
    ) -> Option<f64> {
        let tr = reference.crossing(0.5 * vdd, ref_rising, f64::NEG_INFINITY)?;
        let to = self.crossing(0.5 * vdd, out_rising, f64::NEG_INFINITY)?;
        Some(to - tr)
    }

    /// 10–90 % transition time of a rising edge (or 90–10 % of a falling
    /// edge when `rising` is false) after time `after`.
    pub fn slew_10_90(&self, vdd: f64, rising: bool, after: f64) -> Option<f64> {
        if rising {
            let t10 = self.crossing(0.1 * vdd, true, after)?;
            let t90 = self.crossing(0.9 * vdd, true, t10)?;
            Some(t90 - t10)
        } else {
            let t90 = self.crossing(0.9 * vdd, false, after)?;
            let t10 = self.crossing(0.1 * vdd, false, t90)?;
            Some(t10 - t90)
        }
    }

    /// Resample onto the given time grid (linear interpolation, clamped).
    ///
    /// # Panics
    ///
    /// Panics on an empty waveform.
    pub fn resample(&self, times: &[f64]) -> Waveform {
        let v = times.iter().map(|&t| self.value_at(t)).collect();
        Waveform::from_samples(times.to_vec(), v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> Waveform {
        // 0 at t=0, rising to 3 at t=3, flat after.
        Waveform::from_samples(vec![0.0, 3.0, 5.0], vec![0.0, 3.0, 3.0])
    }

    #[test]
    fn interpolation_and_clamping() {
        let w = ramp();
        assert_eq!(w.value_at(-1.0), 0.0);
        assert_eq!(w.value_at(1.5), 1.5);
        assert_eq!(w.value_at(10.0), 3.0);
        assert_eq!(w.len(), 3);
        assert!(!w.is_empty());
    }

    #[test]
    fn extremes() {
        let w = Waveform::from_samples(vec![0.0, 1.0, 2.0], vec![0.0, -2.0, 1.0]);
        assert_eq!(w.max(), (2.0, 1.0));
        assert_eq!(w.min(), (1.0, -2.0));
        assert_eq!(w.peak_deviation(0.0), (1.0, -2.0));
        assert_eq!(w.peak_deviation(1.0), (1.0, -3.0));
    }

    #[test]
    fn crossings() {
        let w = ramp();
        assert_eq!(w.crossing(1.5, true, 0.0), Some(1.5));
        assert_eq!(w.crossing(1.5, false, 0.0), None);
        assert_eq!(w.crossing(1.5, true, 2.0), None);
        // Falling waveform.
        let f = Waveform::from_samples(vec![0.0, 2.0], vec![3.0, 0.0]);
        assert_eq!(f.crossing(1.5, false, 0.0), Some(1.0));
    }

    #[test]
    fn delay_measurement() {
        let input = Waveform::from_samples(vec![0.0, 1.0], vec![0.0, 3.0]);
        let output = Waveform::from_samples(vec![0.0, 1.0, 3.0], vec![3.0, 3.0, 0.0]);
        // Input rises through 1.5 at t=0.5; output falls through 1.5 at t=2.0.
        let d = output.delay_50(&input, 3.0, true, false).unwrap();
        assert!((d - 1.5).abs() < 1e-12);
    }

    #[test]
    fn slew_measurement() {
        let w = Waveform::from_samples(vec![0.0, 1.0], vec![0.0, 3.0]);
        let s = w.slew_10_90(3.0, true, 0.0).unwrap();
        assert!((s - 0.8).abs() < 1e-12);
        let f = Waveform::from_samples(vec![0.0, 2.0], vec![3.0, 0.0]);
        let s = f.slew_10_90(3.0, false, 0.0).unwrap();
        assert!((s - 1.6).abs() < 1e-12);
    }

    #[test]
    fn push_and_resample() {
        let mut w = Waveform::new();
        w.push(0.0, 0.0);
        w.push(1.0, 2.0);
        let r = w.resample(&[0.0, 0.25, 0.5, 1.0]);
        assert_eq!(r.values(), &[0.0, 0.5, 1.0, 2.0]);
        assert_eq!(r.times().len(), 4);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_non_monotone_times() {
        Waveform::from_samples(vec![0.0, 0.0], vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn push_rejects_backwards_time() {
        let mut w = Waveform::new();
        w.push(1.0, 0.0);
        w.push(0.5, 0.0);
    }

    #[test]
    #[should_panic(expected = "empty waveform")]
    fn empty_value_at_panics() {
        Waveform::new().value_at(0.0);
    }
}
