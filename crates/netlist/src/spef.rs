//! SPEF-lite: a compact text exchange format for [`ParasiticDb`].
//!
//! Real extraction flows hand parasitics to verification through SPEF; this
//! module provides the same decoupling for PCV with a deliberately small
//! grammar:
//!
//! ```text
//! *SPEF pcv-lite 1.0
//! *NET <name> <num_nodes>
//! *LOAD <node>
//! *R <node_a> <node_b> <ohms>
//! *GC <node> <farads>
//! *END
//! *CC <net_a> <node_a> <net_b> <node_b> <farads>
//! ```

use crate::parasitics::{NetNodeRef, NetParasitics, ParasiticDb};
use std::fmt;

/// Errors produced while parsing SPEF-lite text.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseSpefError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseSpefError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spef parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseSpefError {}

/// Serialize a parasitic database to SPEF-lite text.
pub fn write_spef(db: &ParasiticDb) -> String {
    let mut out = String::from("*SPEF pcv-lite 1.0\n");
    for (_, net) in db.iter() {
        out.push_str(&format!("*NET {} {}\n", net.name(), net.num_nodes()));
        for &n in net.load_nodes() {
            out.push_str(&format!("*LOAD {n}\n"));
        }
        for &(a, b, r) in net.resistors() {
            out.push_str(&format!("*R {a} {b} {r:e}\n"));
        }
        for &(n, c) in net.ground_caps() {
            out.push_str(&format!("*GC {n} {c:e}\n"));
        }
        out.push_str("*END\n");
    }
    for c in db.couplings() {
        out.push_str(&format!(
            "*CC {} {} {} {} {:e}\n",
            db.net(c.a.net).name(),
            c.a.node,
            db.net(c.b.net).name(),
            c.b.node,
            c.farads
        ));
    }
    out
}

/// Parse SPEF-lite text into a parasitic database.
///
/// # Errors
///
/// Returns [`ParseSpefError`] with a line number on any malformed record,
/// unknown net reference, or out-of-range node.
pub fn parse_spef(text: &str) -> Result<ParasiticDb, ParseSpefError> {
    let mut db = ParasiticDb::new();
    let mut current: Option<NetParasitics> = None;
    let err = |line: usize, message: &str| ParseSpefError { line, message: message.to_owned() };

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with("//") {
            continue;
        }
        let mut tokens = trimmed.split_whitespace();
        // `trimmed` is non-empty here, but a typed error beats a panic if
        // the tokenizer ever disagrees (e.g. exotic whitespace).
        let Some(keyword) = tokens.next() else {
            return Err(err(line, "line has no leading keyword token"));
        };
        let rest: Vec<&str> = tokens.collect();
        match keyword {
            "*SPEF" => {}
            "*NET" => {
                if current.is_some() {
                    return Err(err(line, "*NET before previous *END"));
                }
                if rest.len() != 2 {
                    return Err(err(line, "*NET needs <name> <num_nodes>"));
                }
                let n: usize = rest[1].parse().map_err(|_| err(line, "invalid node count"))?;
                if n == 0 {
                    return Err(err(line, "net needs at least the driver node"));
                }
                let mut net = NetParasitics::new(rest[0]);
                for _ in 1..n {
                    net.add_node();
                }
                current = Some(net);
            }
            "*LOAD" | "*R" | "*GC" => {
                let net = current.as_mut().ok_or_else(|| err(line, "record outside *NET block"))?;
                let parse_usize = |s: &str| -> Result<usize, ParseSpefError> {
                    s.parse().map_err(|_| err(line, "invalid node index"))
                };
                let parse_f64 = |s: &str| -> Result<f64, ParseSpefError> {
                    s.parse().map_err(|_| err(line, "invalid numeric value"))
                };
                match keyword {
                    "*LOAD" => {
                        if rest.len() != 1 {
                            return Err(err(line, "*LOAD needs <node>"));
                        }
                        let n = parse_usize(rest[0])?;
                        if n >= net.num_nodes() {
                            return Err(err(line, "load node out of range"));
                        }
                        net.mark_load(n);
                    }
                    "*R" => {
                        if rest.len() != 3 {
                            return Err(err(line, "*R needs <a> <b> <ohms>"));
                        }
                        let a = parse_usize(rest[0])?;
                        let b = parse_usize(rest[1])?;
                        let r = parse_f64(rest[2])?;
                        if a >= net.num_nodes() || b >= net.num_nodes() {
                            return Err(err(line, "resistor node out of range"));
                        }
                        if r <= 0.0 || !r.is_finite() {
                            return Err(err(line, "resistance must be positive"));
                        }
                        net.add_resistor(a, b, r);
                    }
                    _ => {
                        if rest.len() != 2 {
                            return Err(err(line, "*GC needs <node> <farads>"));
                        }
                        let n = parse_usize(rest[0])?;
                        let c = parse_f64(rest[1])?;
                        if n >= net.num_nodes() {
                            return Err(err(line, "cap node out of range"));
                        }
                        if c < 0.0 || !c.is_finite() {
                            return Err(err(line, "capacitance must be non-negative"));
                        }
                        net.add_ground_cap(n, c);
                    }
                }
            }
            "*END" => {
                let net = current.take().ok_or_else(|| err(line, "*END without *NET"))?;
                if db.find_net(net.name()).is_some() {
                    return Err(err(line, "duplicate net name"));
                }
                db.add_net(net);
            }
            "*CC" => {
                if current.is_some() {
                    return Err(err(line, "*CC inside *NET block"));
                }
                if rest.len() != 5 {
                    return Err(err(line, "*CC needs <net_a> <node_a> <net_b> <node_b> <farads>"));
                }
                let na = db.find_net(rest[0]).ok_or_else(|| err(line, "unknown net in *CC"))?;
                let a: usize = rest[1].parse().map_err(|_| err(line, "invalid node index"))?;
                let nb = db.find_net(rest[2]).ok_or_else(|| err(line, "unknown net in *CC"))?;
                let b: usize = rest[3].parse().map_err(|_| err(line, "invalid node index"))?;
                let c: f64 = rest[4].parse().map_err(|_| err(line, "invalid numeric value"))?;
                if na == nb {
                    return Err(err(line, "coupling endpoints must differ"));
                }
                if a >= db.net(na).num_nodes() || b >= db.net(nb).num_nodes() {
                    return Err(err(line, "coupling node out of range"));
                }
                if c < 0.0 || !c.is_finite() {
                    return Err(err(line, "capacitance must be non-negative"));
                }
                db.add_coupling(
                    NetNodeRef { net: na, node: a },
                    NetNodeRef { net: nb, node: b },
                    c,
                );
            }
            other => return Err(err(line, &format!("unknown record {other:?}"))),
        }
    }
    if current.is_some() {
        return Err(ParseSpefError {
            line: text.lines().count(),
            message: "unterminated *NET block".into(),
        });
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PNetId;

    fn sample_db() -> ParasiticDb {
        let mut db = ParasiticDb::new();
        let mut a = NetParasitics::new("alpha");
        let a1 = a.add_node();
        let a2 = a.add_node();
        a.add_resistor(0, a1, 120.0);
        a.add_resistor(a1, a2, 60.0);
        a.add_ground_cap(a1, 2.5e-15);
        a.add_ground_cap(a2, 1.5e-15);
        a.mark_load(a2);
        let aid = db.add_net(a);
        let mut b = NetParasitics::new("beta");
        let b1 = b.add_node();
        b.add_resistor(0, b1, 200.0);
        b.add_ground_cap(b1, 3e-15);
        let bid = db.add_net(b);
        db.add_coupling(NetNodeRef { net: aid, node: 1 }, NetNodeRef { net: bid, node: 1 }, 4e-15);
        db
    }

    #[test]
    fn round_trip_preserves_everything() {
        let db = sample_db();
        let text = write_spef(&db);
        let db2 = parse_spef(&text).unwrap();
        assert_eq!(db2.num_nets(), 2);
        let a = db2.find_net("alpha").unwrap();
        let b = db2.find_net("beta").unwrap();
        assert_eq!(db2.net(a).num_nodes(), 3);
        assert_eq!(db2.net(a).load_nodes(), &[2]);
        assert!((db2.net(a).total_resistance() - 180.0).abs() < 1e-9);
        assert!((db2.net(a).total_ground_cap() - 4e-15).abs() < 1e-28);
        assert!((db2.total_coupling_cap(b) - 4e-15).abs() < 1e-28);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\n// a comment\n*NET x 1\n*END\n";
        let db = parse_spef(text).unwrap();
        assert_eq!(db.num_nets(), 1);
    }

    #[test]
    fn error_reports_line_numbers() {
        let text = "*NET x 1\n*R 0 5 10.0\n*END\n";
        let e = parse_spef(text).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("line 2"));
    }

    #[test]
    fn unknown_record_rejected() {
        assert!(parse_spef("*BOGUS 1 2\n").is_err());
    }

    #[test]
    fn cc_requires_known_nets() {
        let text = "*NET a 1\n*END\n*CC a 0 zz 0 1e-15\n";
        let e = parse_spef(text).unwrap_err();
        assert!(e.message.contains("unknown net"));
    }

    #[test]
    fn unterminated_block_rejected() {
        assert!(parse_spef("*NET a 2\n*GC 1 1e-15\n").is_err());
    }

    #[test]
    fn nested_net_rejected() {
        let e = parse_spef("*NET a 1\n*NET b 1\n").unwrap_err();
        assert!(e.message.contains("*END"));
    }

    #[test]
    fn negative_values_rejected() {
        assert!(parse_spef("*NET a 2\n*R 0 1 -5\n*END\n").is_err());
        assert!(parse_spef("*NET a 2\n*GC 1 -1e-15\n*END\n").is_err());
    }

    /// A database exercising the zero-cap edge: explicit `0.0` ground and
    /// coupling capacitors alongside ordinary values.
    fn zero_cap_db() -> ParasiticDb {
        let mut db = sample_db();
        let a = db.find_net("alpha").unwrap();
        let b = db.find_net("beta").unwrap();
        db.net_mut(a).add_ground_cap(0, 0.0);
        db.add_coupling(NetNodeRef { net: a, node: 2 }, NetNodeRef { net: b, node: 0 }, 0.0);
        db
    }

    #[test]
    fn zero_cap_entries_round_trip_byte_identically() {
        // ECO regression: a zero-farad entry is electrically inert but
        // enters the canonical cluster fingerprints, so write -> parse ->
        // write must preserve it exactly — the diff layer would otherwise
        // report phantom edits (or miss real ones) on every rewrite.
        let db = zero_cap_db();
        let text = write_spef(&db);
        assert!(text.contains("*GC 0 0e0\n"), "zero gcap must be emitted:\n{text}");
        assert!(text.contains("*CC alpha 2 beta 0 0e0\n"), "zero coupling must be emitted");
        let back = parse_spef(&text).expect("round-trip parses");
        assert_eq!(write_spef(&back), text, "re-emission must be byte-identical");
        assert!(
            crate::eco::EcoDelta::diff(&db, &back).is_empty(),
            "round-trip must not produce phantom ECO edits"
        );
    }

    #[test]
    fn negative_zero_caps_normalize_to_canonical_zero() {
        // `-0.0` passes the non-negativity check (it is not `< 0.0`) but
        // differs from `+0.0` in bits. The data model canonicalizes it on
        // entry, so an external tool flipping the sign of a zero cap can
        // never dirty a cluster or surface as a phantom ECO edit.
        let text = "*NET a 2\n*GC 1 -0e0\n*END\n*NET b 1\n*END\n*CC a 1 b 0 -0.0\n";
        let db = parse_spef(text).expect("-0.0 caps parse");
        let a = db.find_net("a").unwrap();
        assert_eq!(db.net(a).ground_caps()[0].1.to_bits(), 0.0f64.to_bits());
        assert_eq!(db.couplings()[0].farads.to_bits(), 0.0f64.to_bits());
        let reemitted = write_spef(&db);
        assert!(!reemitted.contains("-0e0"), "canonical zero only:\n{reemitted}");
        // Diffing against the same netlist written with +0.0 is a no-op.
        let plus = parse_spef(&reemitted).unwrap();
        assert!(crate::eco::EcoDelta::diff(&db, &plus).is_empty());
    }

    #[test]
    fn extreme_values_round_trip_bit_exactly() {
        // The `{:e}` emitter must round-trip every finite f64 the data
        // model accepts: subnormals, the largest normal, odd mantissas.
        let mut db = ParasiticDb::new();
        let mut n = NetParasitics::new("x");
        let n1 = n.add_node();
        n.add_resistor(0, n1, f64::MAX);
        n.add_resistor(0, n1, f64::MIN_POSITIVE);
        n.add_ground_cap(n1, 5e-324); // smallest subnormal
        n.add_ground_cap(n1, 0.1 + 0.2); // a value with no short decimal
        db.add_net(n);
        let text = write_spef(&db);
        let back = parse_spef(&text).expect("parses");
        let orig = db.net(PNetId(0));
        let got = back.net(PNetId(0));
        for (a, b) in orig.resistors().iter().zip(got.resistors()) {
            assert_eq!(a.2.to_bits(), b.2.to_bits(), "resistance bits drifted");
        }
        for (a, b) in orig.ground_caps().iter().zip(got.ground_caps()) {
            assert_eq!(a.1.to_bits(), b.1.to_bits(), "capacitance bits drifted");
        }
        assert_eq!(write_spef(&back), text);
    }
}
