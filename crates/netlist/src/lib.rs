//! Circuit and parasitic data model for parasitic-coupling verification.
//!
//! This crate defines the shared vocabulary of the PCV workspace:
//!
//! * [`Circuit`] — a flat electrical circuit (resistors, capacitors, sources,
//!   MOSFETs) with named nodes, the input of the SPICE-class simulator and of
//!   the SyMPVL reduction.
//! * [`SourceWave`] — time-domain stimulus descriptions (DC, pulse, PWL).
//! * [`MosParams`] — Level-1 MOSFET model parameters.
//! * [`ParasiticDb`] — per-net extracted RC parasitics plus cross-net
//!   coupling capacitors, the chip-level data crosstalk analysis consumes.
//! * [`Design`] — a gate-level design: cell instances, nets, drivers, loads,
//!   switching windows and logic-correlation annotations.
//! * [`spef`] — a SPEF-like text exchange format for [`ParasiticDb`].
//! * [`eco`] — typed deltas ([`EcoDelta`]) between two parasitic
//!   databases, the front end of incremental (ECO) re-verification.
//! * [`deck`] — a SPICE-like text format for [`Circuit`].
//!
//! # Example
//!
//! ```
//! # use pcv_netlist::{Circuit, SourceWave};
//! let mut ckt = Circuit::new();
//! let inp = ckt.node("in");
//! let out = ckt.node("out");
//! ckt.add_resistor(inp, out, 1000.0);
//! ckt.add_capacitor(out, Circuit::GROUND, 1e-12);
//! ckt.add_vsrc(inp, Circuit::GROUND, SourceWave::step(0.0, 3.0, 1e-9, 0.1e-9));
//! assert_eq!(ckt.num_nodes(), 2);
//! ```

#![deny(missing_docs)]

pub mod circuit;
pub mod deck;
pub mod design;
pub mod eco;
pub mod parasitics;
pub mod spef;
pub mod termination;
pub mod wave;
pub mod waveform;

pub use circuit::{Circuit, Element, MosKind, MosParams, NodeId};
pub use design::{Design, InstanceId, NetId};
pub use eco::{CouplingEdit, EcoDelta, GcapEdit, NetDelta, ResEdit, ValueEdit};
pub use parasitics::{CouplingCap, NetNodeRef, NetParasitics, PNetId, ParasiticDb};
pub use termination::{
    CapacitiveTermination, ResistiveTermination, Termination, TheveninTermination,
};
pub use wave::SourceWave;
pub use waveform::Waveform;
