//! Nonlinear one-port terminations.
//!
//! The SyMPVL methodology attaches a *nonlinear driver model* `i_x(v_x)` to
//! the reduced linear interconnect; the SPICE substrate stamps the same
//! models directly into MNA. This trait is the shared contract: a device
//! hanging off one node, characterized by the current it draws as a function
//! of the node voltage and time.

use std::fmt;

/// A nonlinear (or linear) one-port device attached to a single node.
///
/// Implementations include the Thevenin (linear-resistor) driver model and
/// the pre-characterized nonlinear cell model from `pcv-cells`.
pub trait Termination: fmt::Debug {
    /// Current drawn *from* the node *into* the device at time `t` when the
    /// node voltage is `v`, together with its derivative `di/dv`.
    ///
    /// A positive current discharges the node.
    fn eval(&self, t: f64, v: f64) -> (f64, f64);

    /// Effective linear capacitance the device adds at the node (farads).
    fn capacitance(&self) -> f64 {
        0.0
    }

    /// Hint for transient breakpoint placement: times at which the device's
    /// internal stimulus has corners.
    fn breakpoints(&self) -> Vec<f64> {
        Vec::new()
    }
}

/// A grounded linear resistor as a termination: `i = v / ohms`.
#[derive(Debug, Clone)]
pub struct ResistiveTermination {
    ohms: f64,
}

impl ResistiveTermination {
    /// Create a resistive termination.
    ///
    /// # Panics
    ///
    /// Panics unless `ohms` is positive and finite.
    pub fn new(ohms: f64) -> Self {
        assert!(ohms > 0.0 && ohms.is_finite(), "resistance must be positive");
        ResistiveTermination { ohms }
    }

    /// The resistance in ohms.
    pub fn ohms(&self) -> f64 {
        self.ohms
    }
}

impl Termination for ResistiveTermination {
    fn eval(&self, _t: f64, v: f64) -> (f64, f64) {
        (v / self.ohms, 1.0 / self.ohms)
    }
}

/// A Thevenin driver: voltage source `e(t)` behind a series resistance, as a
/// termination: `i = (v - e(t)) / ohms`.
///
/// This is the *timing-library based linear driver model* of the paper
/// (Section 4.1): the source waveform comes from the library's slew data and
/// the resistance from its delay-vs-load characterization.
#[derive(Debug, Clone)]
pub struct TheveninTermination {
    ohms: f64,
    wave: crate::wave::SourceWave,
}

impl TheveninTermination {
    /// Create a Thevenin termination from a series resistance and an
    /// open-circuit voltage waveform.
    ///
    /// # Panics
    ///
    /// Panics unless `ohms` is positive and finite.
    pub fn new(ohms: f64, wave: crate::wave::SourceWave) -> Self {
        assert!(ohms > 0.0 && ohms.is_finite(), "resistance must be positive");
        TheveninTermination { ohms, wave }
    }

    /// The series resistance in ohms.
    pub fn ohms(&self) -> f64 {
        self.ohms
    }

    /// The open-circuit voltage waveform.
    pub fn wave(&self) -> &crate::wave::SourceWave {
        &self.wave
    }
}

impl Termination for TheveninTermination {
    fn eval(&self, t: f64, v: f64) -> (f64, f64) {
        ((v - self.wave.value_at(t)) / self.ohms, 1.0 / self.ohms)
    }

    fn breakpoints(&self) -> Vec<f64> {
        self.wave.breakpoints()
    }
}

/// A pure capacitive load (e.g. a receiver input pin).
#[derive(Debug, Clone)]
pub struct CapacitiveTermination {
    farads: f64,
}

impl CapacitiveTermination {
    /// Create a capacitive termination.
    ///
    /// # Panics
    ///
    /// Panics if `farads` is negative or not finite.
    pub fn new(farads: f64) -> Self {
        assert!(farads >= 0.0 && farads.is_finite(), "capacitance must be non-negative");
        CapacitiveTermination { farads }
    }
}

impl Termination for CapacitiveTermination {
    fn eval(&self, _t: f64, _v: f64) -> (f64, f64) {
        (0.0, 0.0)
    }

    fn capacitance(&self) -> f64 {
        self.farads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wave::SourceWave;

    #[test]
    fn resistive_termination_is_ohmic() {
        let r = ResistiveTermination::new(1000.0);
        let (i, g) = r.eval(0.0, 2.0);
        assert!((i - 0.002).abs() < 1e-15);
        assert!((g - 0.001).abs() < 1e-15);
        assert_eq!(r.capacitance(), 0.0);
        assert_eq!(r.ohms(), 1000.0);
    }

    #[test]
    fn thevenin_tracks_source() {
        let t = TheveninTermination::new(500.0, SourceWave::step(0.0, 2.5, 1e-9, 1e-10));
        // Before the edge: e = 0, so i = v/R.
        let (i0, g0) = t.eval(0.0, 1.0);
        assert!((i0 - 0.002).abs() < 1e-12);
        assert!((g0 - 0.002).abs() < 1e-12);
        // Long after the edge: e = 2.5.
        let (i1, _) = t.eval(1e-6, 2.5);
        assert!(i1.abs() < 1e-12);
        assert!(!t.breakpoints().is_empty());
    }

    #[test]
    fn capacitive_termination_draws_no_dc_current() {
        let c = CapacitiveTermination::new(5e-15);
        assert_eq!(c.eval(0.0, 3.0), (0.0, 0.0));
        assert_eq!(c.capacitance(), 5e-15);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn resistive_rejects_zero() {
        ResistiveTermination::new(0.0);
    }
}
