//! Extracted parasitics: per-net RC trees plus cross-net coupling capacitors.
//!
//! This is the chip-level data model the crosstalk flow consumes. Each net
//! carries its own internal node space (node `0` is the driver/root pin);
//! coupling capacitors reference `(net, node)` pairs across nets.

use std::collections::HashMap;
use std::fmt;

/// Identifier of a net inside a [`ParasiticDb`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PNetId(pub usize);

impl fmt::Display for PNetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "net{}", self.0)
    }
}

/// Reference to a specific electrical node of a specific net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NetNodeRef {
    /// The net.
    pub net: PNetId,
    /// Node index within the net (0 = driver pin).
    pub node: usize,
}

/// A coupling capacitor between nodes of two different nets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CouplingCap {
    /// One terminal.
    pub a: NetNodeRef,
    /// The other terminal.
    pub b: NetNodeRef,
    /// Capacitance in farads.
    pub farads: f64,
}

/// RC parasitics of a single net.
///
/// Node `0` is by convention the driver (root) pin. Receiver pins are
/// registered through [`NetParasitics::mark_load`].
#[derive(Debug, Clone, PartialEq)]
pub struct NetParasitics {
    name: String,
    num_nodes: usize,
    load_nodes: Vec<usize>,
    resistors: Vec<(usize, usize, f64)>,
    gcaps: Vec<(usize, f64)>,
}

impl NetParasitics {
    /// Create a net with just the driver node (node 0).
    pub fn new(name: impl Into<String>) -> Self {
        NetParasitics {
            name: name.into(),
            num_nodes: 1,
            load_nodes: Vec::new(),
            resistors: Vec::new(),
            gcaps: Vec::new(),
        }
    }

    /// Net name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of electrical nodes (≥ 1).
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The driver (root) node index.
    pub fn driver_node(&self) -> usize {
        0
    }

    /// Receiver pin node indices.
    pub fn load_nodes(&self) -> &[usize] {
        &self.load_nodes
    }

    /// Wire resistors as `(node_a, node_b, ohms)`.
    pub fn resistors(&self) -> &[(usize, usize, f64)] {
        &self.resistors
    }

    /// Grounded capacitors as `(node, farads)`.
    pub fn ground_caps(&self) -> &[(usize, f64)] {
        &self.gcaps
    }

    /// Add a new internal node, returning its index.
    pub fn add_node(&mut self) -> usize {
        self.num_nodes += 1;
        self.num_nodes - 1
    }

    /// Add a wire resistor between two nodes of this net.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range nodes or non-positive resistance.
    pub fn add_resistor(&mut self, a: usize, b: usize, ohms: f64) {
        assert!(a < self.num_nodes && b < self.num_nodes, "resistor node out of range");
        assert!(ohms > 0.0 && ohms.is_finite(), "resistance must be positive");
        self.resistors.push((a, b, ohms));
    }

    /// Add a grounded capacitor at a node.
    ///
    /// A negative zero is stored as canonical `+0.0`: the two zeros are
    /// electrically identical but differ in bits, and downstream consumers
    /// (ECO diffs, cluster fingerprints) compare capacitances bit-exactly.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range node or negative capacitance.
    pub fn add_ground_cap(&mut self, node: usize, farads: f64) {
        assert!(node < self.num_nodes, "cap node out of range");
        assert!(farads >= 0.0 && farads.is_finite(), "capacitance must be non-negative");
        // IEEE: -0.0 + 0.0 == +0.0, nonzero values are unchanged.
        self.gcaps.push((node, farads + 0.0));
    }

    /// Mark a node as a receiver (load) pin.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range node.
    pub fn mark_load(&mut self, node: usize) {
        assert!(node < self.num_nodes, "load node out of range");
        if !self.load_nodes.contains(&node) {
            self.load_nodes.push(node);
        }
    }

    /// Sum of grounded capacitance on this net.
    pub fn total_ground_cap(&self) -> f64 {
        self.gcaps.iter().map(|&(_, c)| c).sum()
    }

    /// Total wire resistance (sum over segments).
    pub fn total_resistance(&self) -> f64 {
        self.resistors.iter().map(|&(_, _, r)| r).sum()
    }
}

/// A chip-level parasitic database: nets plus coupling capacitors.
///
/// # Example
///
/// ```
/// # use pcv_netlist::{ParasiticDb, NetParasitics, NetNodeRef};
/// let mut db = ParasiticDb::new();
/// let mut a = NetParasitics::new("a");
/// let a1 = a.add_node();
/// a.add_resistor(0, a1, 50.0);
/// a.add_ground_cap(a1, 2e-15);
/// let a_id = db.add_net(a);
/// let b_id = db.add_net(NetParasitics::new("b"));
/// db.add_coupling(NetNodeRef { net: a_id, node: a1 },
///                 NetNodeRef { net: b_id, node: 0 }, 1e-15);
/// assert_eq!(db.total_coupling_cap(a_id), 1e-15);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ParasiticDb {
    nets: Vec<NetParasitics>,
    by_name: HashMap<String, PNetId>,
    couplings: Vec<CouplingCap>,
    /// For each net, indices into `couplings` that touch it.
    net_couplings: Vec<Vec<usize>>,
}

impl ParasiticDb {
    /// Create an empty database.
    pub fn new() -> Self {
        ParasiticDb::default()
    }

    /// Add a net; its name must be unique.
    ///
    /// # Panics
    ///
    /// Panics if a net with the same name already exists.
    pub fn add_net(&mut self, net: NetParasitics) -> PNetId {
        let id = PNetId(self.nets.len());
        let prev = self.by_name.insert(net.name.clone(), id);
        assert!(prev.is_none(), "duplicate net name {:?}", net.name);
        self.nets.push(net);
        self.net_couplings.push(Vec::new());
        id
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// Access a net.
    pub fn net(&self, id: PNetId) -> &NetParasitics {
        &self.nets[id.0]
    }

    /// Mutable access to a net.
    pub fn net_mut(&mut self, id: PNetId) -> &mut NetParasitics {
        &mut self.nets[id.0]
    }

    /// Look up a net by name.
    pub fn find_net(&self, name: &str) -> Option<PNetId> {
        self.by_name.get(name).copied()
    }

    /// Iterate over `(id, net)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (PNetId, &NetParasitics)> {
        self.nets.iter().enumerate().map(|(i, n)| (PNetId(i), n))
    }

    /// Add a coupling capacitor between nodes of two different nets.
    ///
    /// As with [`NetParasitics::add_ground_cap`], a negative zero is
    /// stored as canonical `+0.0` so that bit-exact consumers (ECO diffs,
    /// cluster fingerprints) never see two spellings of the same zero.
    ///
    /// # Panics
    ///
    /// Panics if the endpoints are on the same net, reference invalid
    /// nodes, or the value is negative.
    pub fn add_coupling(&mut self, a: NetNodeRef, b: NetNodeRef, farads: f64) -> usize {
        assert_ne!(a.net, b.net, "coupling endpoints must be on different nets");
        assert!(a.node < self.nets[a.net.0].num_nodes, "coupling node out of range");
        assert!(b.node < self.nets[b.net.0].num_nodes, "coupling node out of range");
        assert!(farads >= 0.0 && farads.is_finite(), "capacitance must be non-negative");
        let idx = self.couplings.len();
        self.couplings.push(CouplingCap { a, b, farads: farads + 0.0 });
        self.net_couplings[a.net.0].push(idx);
        self.net_couplings[b.net.0].push(idx);
        idx
    }

    /// All coupling capacitors.
    pub fn couplings(&self) -> &[CouplingCap] {
        &self.couplings
    }

    /// Coupling capacitors that touch a given net.
    pub fn couplings_of(&self, net: PNetId) -> impl Iterator<Item = &CouplingCap> {
        self.net_couplings[net.0].iter().map(move |&i| &self.couplings[i])
    }

    /// Sum of coupling capacitance touching a net.
    pub fn total_coupling_cap(&self, net: PNetId) -> f64 {
        self.couplings_of(net).map(|c| c.farads).sum()
    }

    /// Total capacitance (grounded plus coupling) on a net — the denominator
    /// of the pruning capacitance-ratio test.
    pub fn total_cap(&self, net: PNetId) -> f64 {
        self.net(net).total_ground_cap() + self.total_coupling_cap(net)
    }

    /// Aggressor neighbors of a net: `(other_net, summed_coupling_farads)`,
    /// sorted descending by coupling.
    pub fn neighbors(&self, net: PNetId) -> Vec<(PNetId, f64)> {
        let mut acc: HashMap<PNetId, f64> = HashMap::new();
        for c in self.couplings_of(net) {
            let other = if c.a.net == net { c.b.net } else { c.a.net };
            *acc.entry(other).or_insert(0.0) += c.farads;
        }
        let mut v: Vec<(PNetId, f64)> = acc.into_iter().collect();
        v.sort_by(|x, y| y.1.partial_cmp(&x.1).expect("finite caps").then(x.0.cmp(&y.0)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_net_db() -> (ParasiticDb, PNetId, PNetId) {
        let mut db = ParasiticDb::new();
        let mut a = NetParasitics::new("a");
        let a1 = a.add_node();
        a.add_resistor(0, a1, 100.0);
        a.add_ground_cap(0, 1e-15);
        a.add_ground_cap(a1, 3e-15);
        a.mark_load(a1);
        let aid = db.add_net(a);
        let mut b = NetParasitics::new("b");
        let b1 = b.add_node();
        b.add_resistor(0, b1, 200.0);
        b.add_ground_cap(b1, 2e-15);
        let bid = db.add_net(b);
        db.add_coupling(
            NetNodeRef { net: aid, node: a1 },
            NetNodeRef { net: bid, node: b1 },
            5e-15,
        );
        (db, aid, bid)
    }

    #[test]
    fn net_construction_and_sums() {
        let (db, aid, _) = two_net_db();
        let a = db.net(aid);
        assert_eq!(a.num_nodes(), 2);
        assert_eq!(a.driver_node(), 0);
        assert_eq!(a.load_nodes(), &[1]);
        assert!((a.total_ground_cap() - 4e-15).abs() < 1e-30);
        assert!((a.total_resistance() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn coupling_bookkeeping() {
        let (db, aid, bid) = two_net_db();
        assert_eq!(db.couplings().len(), 1);
        assert_eq!(db.couplings_of(aid).count(), 1);
        assert!((db.total_coupling_cap(bid) - 5e-15).abs() < 1e-30);
        assert!((db.total_cap(aid) - 9e-15).abs() < 1e-30);
        let nbrs = db.neighbors(aid);
        assert_eq!(nbrs, vec![(bid, 5e-15)]);
    }

    #[test]
    fn neighbors_sum_multiple_caps_and_sort() {
        let mut db = ParasiticDb::new();
        let a = db.add_net(NetParasitics::new("a"));
        let b = db.add_net(NetParasitics::new("b"));
        let c = db.add_net(NetParasitics::new("c"));
        let r = |net, node| NetNodeRef { net, node };
        db.add_coupling(r(a, 0), r(b, 0), 1e-15);
        db.add_coupling(r(a, 0), r(b, 0), 2e-15);
        db.add_coupling(r(a, 0), r(c, 0), 10e-15);
        let nbrs = db.neighbors(a);
        assert_eq!(nbrs.len(), 2);
        assert_eq!(nbrs[0].0, c);
        assert!((nbrs[1].1 - 3e-15).abs() < 1e-30);
    }

    #[test]
    fn find_net_by_name() {
        let (db, aid, bid) = two_net_db();
        assert_eq!(db.find_net("a"), Some(aid));
        assert_eq!(db.find_net("b"), Some(bid));
        assert_eq!(db.find_net("zz"), None);
        assert_eq!(db.num_nets(), 2);
        assert_eq!(db.iter().count(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate net name")]
    fn duplicate_names_rejected() {
        let mut db = ParasiticDb::new();
        db.add_net(NetParasitics::new("x"));
        db.add_net(NetParasitics::new("x"));
    }

    #[test]
    #[should_panic(expected = "different nets")]
    fn self_coupling_rejected() {
        let mut db = ParasiticDb::new();
        let a = db.add_net(NetParasitics::new("a"));
        db.add_coupling(NetNodeRef { net: a, node: 0 }, NetNodeRef { net: a, node: 0 }, 1e-15);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_coupling_node_rejected() {
        let mut db = ParasiticDb::new();
        let a = db.add_net(NetParasitics::new("a"));
        let b = db.add_net(NetParasitics::new("b"));
        db.add_coupling(NetNodeRef { net: a, node: 5 }, NetNodeRef { net: b, node: 0 }, 1e-15);
    }

    #[test]
    fn mark_load_is_idempotent() {
        let mut n = NetParasitics::new("n");
        let k = n.add_node();
        n.mark_load(k);
        n.mark_load(k);
        assert_eq!(n.load_nodes().len(), 1);
    }
}
