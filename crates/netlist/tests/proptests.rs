//! Randomized-property tests: waveform algebra, source-wave evaluation, and
//! SPEF-lite round-tripping over arbitrary databases. Driven by the seeded
//! internal PRNG so the workspace builds offline.

use pcv_netlist::spef::{parse_spef, write_spef};
use pcv_netlist::{NetNodeRef, NetParasitics, ParasiticDb, SourceWave, Waveform};
use pcv_rng::Rng;

fn monotone_times(rng: &mut Rng, n: usize) -> Vec<f64> {
    let mut t = 0.0;
    (0..n)
        .map(|_| {
            t += rng.range_f64(1e-12, 1e-9);
            t
        })
        .collect()
}

fn values(rng: &mut Rng, n: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..n).map(|_| rng.range_f64(lo, hi)).collect()
}

#[test]
fn waveform_value_at_is_within_sample_bounds() {
    let mut rng = Rng::new(0x4E711);
    for _ in 0..64 {
        let times = monotone_times(&mut rng, 12);
        let vals = values(&mut rng, 12, -3.0, 3.0);
        let query = rng.range_f64(0.0, 2e-8);
        let w = Waveform::from_samples(times, vals.clone());
        let v = w.value_at(query);
        let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
    }
}

#[test]
fn waveform_resample_preserves_samples() {
    let mut rng = Rng::new(0x4E712);
    for _ in 0..64 {
        let times = monotone_times(&mut rng, 8);
        let vals = values(&mut rng, 8, -2.0, 2.0);
        let w = Waveform::from_samples(times.clone(), vals.clone());
        let r = w.resample(&times);
        for (a, b) in r.values().iter().zip(&vals) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}

#[test]
fn peak_deviation_dominates_every_sample() {
    let mut rng = Rng::new(0x4E713);
    for _ in 0..64 {
        let times = monotone_times(&mut rng, 10);
        let vals = values(&mut rng, 10, -2.0, 2.0);
        let baseline = rng.range_f64(-1.0, 1.0);
        let w = Waveform::from_samples(times, vals.clone());
        let (_, peak) = w.peak_deviation(baseline);
        for v in &vals {
            assert!((v - baseline).abs() <= peak.abs() + 1e-12);
        }
    }
}

#[test]
fn pulse_wave_stays_within_levels() {
    let mut rng = Rng::new(0x4E714);
    for _ in 0..64 {
        let v0 = rng.range_f64(-2.0, 2.0);
        let v1 = rng.range_f64(-2.0, 2.0);
        let w = SourceWave::Pulse {
            v0,
            v1,
            delay: rng.range_f64(0.0, 1e-9),
            rise: rng.range_f64(1e-12, 1e-9),
            fall: rng.range_f64(1e-12, 1e-9),
            width: rng.range_f64(1e-12, 2e-9),
            period: f64::INFINITY,
        };
        let t = rng.range_f64(0.0, 1e-8);
        let v = w.value_at(t);
        let (lo, hi) = (v0.min(v1), v0.max(v1));
        assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
        assert_eq!(w.dc_value(), v0);
    }
}

#[test]
fn pwl_wave_interpolates_between_breakpoints() {
    let mut rng = Rng::new(0x4E715);
    for _ in 0..64 {
        let times = monotone_times(&mut rng, 6);
        let vals = values(&mut rng, 6, -3.0, 3.0);
        let t = rng.range_f64(0.0, 1e-8);
        let points: Vec<(f64, f64)> = times.iter().copied().zip(vals.iter().copied()).collect();
        let w = SourceWave::Pwl(points);
        let v = w.value_at(t);
        let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
    }
}

#[test]
fn spef_round_trip_is_lossless() {
    let mut rng = Rng::new(0x4E716);
    for _ in 0..64 {
        let n_nets = rng.range_usize(1, 5);
        let seg_counts: Vec<usize> = (0..n_nets).map(|_| rng.range_usize(1, 6)).collect();
        let res: Vec<f64> = (0..32).map(|_| rng.range_f64(1.0, 1e4)).collect();
        let caps: Vec<f64> = (0..32).map(|_| rng.range_f64(1e-16, 1e-13)).collect();

        let mut db = ParasiticDb::new();
        let mut ids = Vec::new();
        for (k, &segs) in seg_counts.iter().enumerate() {
            let mut net = NetParasitics::new(format!("n{k}"));
            let mut prev = 0;
            for s in 0..segs {
                let node = net.add_node();
                net.add_resistor(prev, node, res[(k * 7 + s) % res.len()]);
                net.add_ground_cap(node, caps[(k * 5 + s) % caps.len()]);
                prev = node;
            }
            net.mark_load(prev);
            ids.push(db.add_net(net));
        }
        for _ in 0..rng.range_usize(0, 10) {
            let (a, b) = (rng.range_usize(0, ids.len()), rng.range_usize(0, ids.len()));
            if a == b {
                continue;
            }
            let na = rng.range_usize(0, db.net(ids[a]).num_nodes());
            let nb = rng.range_usize(0, db.net(ids[b]).num_nodes());
            db.add_coupling(
                NetNodeRef { net: ids[a], node: na },
                NetNodeRef { net: ids[b], node: nb },
                rng.range_f64(1e-16, 1e-13),
            );
        }
        let text = write_spef(&db);
        let back = parse_spef(&text).unwrap();
        assert_eq!(back.num_nets(), db.num_nets());
        assert_eq!(back.couplings().len(), db.couplings().len());
        for (id, net) in db.iter() {
            let bid = back.find_net(net.name()).unwrap();
            let bnet = back.net(bid);
            assert_eq!(bnet.num_nodes(), net.num_nodes());
            assert!(
                (bnet.total_resistance() - net.total_resistance()).abs()
                    <= 1e-12 * net.total_resistance().abs()
            );
            assert!(
                (bnet.total_ground_cap() - net.total_ground_cap()).abs()
                    <= 1e-12 * net.total_ground_cap().abs()
            );
            assert!(
                (back.total_coupling_cap(bid) - db.total_coupling_cap(id)).abs()
                    <= 1e-12 * db.total_coupling_cap(id).abs().max(1e-30)
            );
            assert_eq!(bnet.load_nodes(), net.load_nodes());
        }
    }
}
