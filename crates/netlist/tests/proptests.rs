//! Property-based tests: waveform algebra, source-wave evaluation, and
//! SPEF-lite round-tripping over arbitrary databases.

use pcv_netlist::spef::{parse_spef, write_spef};
use pcv_netlist::{NetNodeRef, NetParasitics, ParasiticDb, SourceWave, Waveform};
use proptest::prelude::*;

fn monotone_times(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(1e-12f64..1e-9, n).prop_map(|steps| {
        let mut t = 0.0;
        steps
            .into_iter()
            .map(|dt| {
                t += dt;
                t
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn waveform_value_at_is_within_sample_bounds(
        times in monotone_times(12),
        values in prop::collection::vec(-3.0f64..3.0, 12),
        query in 0.0f64..2e-8,
    ) {
        let w = Waveform::from_samples(times, values.clone());
        let v = w.value_at(query);
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
    }

    #[test]
    fn waveform_resample_preserves_samples(
        times in monotone_times(8),
        values in prop::collection::vec(-2.0f64..2.0, 8),
    ) {
        let w = Waveform::from_samples(times.clone(), values.clone());
        let r = w.resample(&times);
        for (a, b) in r.values().iter().zip(&values) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn peak_deviation_dominates_every_sample(
        times in monotone_times(10),
        values in prop::collection::vec(-2.0f64..2.0, 10),
        baseline in -1.0f64..1.0,
    ) {
        let w = Waveform::from_samples(times, values.clone());
        let (_, peak) = w.peak_deviation(baseline);
        for v in &values {
            prop_assert!((v - baseline).abs() <= peak.abs() + 1e-12);
        }
    }

    #[test]
    fn pulse_wave_stays_within_levels(
        v0 in -2.0f64..2.0,
        v1 in -2.0f64..2.0,
        delay in 0.0f64..1e-9,
        rise in 1e-12f64..1e-9,
        fall in 1e-12f64..1e-9,
        width in 1e-12f64..2e-9,
        t in 0.0f64..1e-8,
    ) {
        let w = SourceWave::Pulse { v0, v1, delay, rise, fall, width, period: f64::INFINITY };
        let v = w.value_at(t);
        let (lo, hi) = (v0.min(v1), v0.max(v1));
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
        prop_assert_eq!(w.dc_value(), v0);
    }

    #[test]
    fn pwl_wave_interpolates_between_breakpoints(
        times in monotone_times(6),
        values in prop::collection::vec(-3.0f64..3.0, 6),
        t in 0.0f64..1e-8,
    ) {
        let points: Vec<(f64, f64)> =
            times.iter().copied().zip(values.iter().copied()).collect();
        let w = SourceWave::Pwl(points);
        let v = w.value_at(t);
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
    }

    #[test]
    fn spef_round_trip_is_lossless(
        seg_counts in prop::collection::vec(1usize..6, 1..5),
        res in prop::collection::vec(1.0f64..1e4, 32),
        caps in prop::collection::vec(1e-16f64..1e-13, 32),
        couple in prop::collection::vec((0usize..5, 0usize..6, 0usize..5, 0usize..6, 1e-16f64..1e-13), 0..10),
    ) {
        let mut db = ParasiticDb::new();
        let mut ids = Vec::new();
        for (k, &segs) in seg_counts.iter().enumerate() {
            let mut net = NetParasitics::new(format!("n{k}"));
            let mut prev = 0;
            for s in 0..segs {
                let node = net.add_node();
                net.add_resistor(prev, node, res[(k * 7 + s) % res.len()]);
                net.add_ground_cap(node, caps[(k * 5 + s) % caps.len()]);
                prev = node;
            }
            net.mark_load(prev);
            ids.push(db.add_net(net));
        }
        for (a, na, b, nb, c) in couple {
            let (a, b) = (a % ids.len(), b % ids.len());
            if a == b {
                continue;
            }
            let na = na % db.net(ids[a]).num_nodes();
            let nb = nb % db.net(ids[b]).num_nodes();
            db.add_coupling(
                NetNodeRef { net: ids[a], node: na },
                NetNodeRef { net: ids[b], node: nb },
                c,
            );
        }
        let text = write_spef(&db);
        let back = parse_spef(&text).unwrap();
        prop_assert_eq!(back.num_nets(), db.num_nets());
        prop_assert_eq!(back.couplings().len(), db.couplings().len());
        for (id, net) in db.iter() {
            let bid = back.find_net(net.name()).unwrap();
            let bnet = back.net(bid);
            prop_assert_eq!(bnet.num_nodes(), net.num_nodes());
            prop_assert!((bnet.total_resistance() - net.total_resistance()).abs()
                <= 1e-12 * net.total_resistance().abs());
            prop_assert!((bnet.total_ground_cap() - net.total_ground_cap()).abs()
                <= 1e-12 * net.total_ground_cap().abs());
            prop_assert!((back.total_coupling_cap(bid) - db.total_coupling_cap(id)).abs()
                <= 1e-12 * db.total_coupling_cap(id).abs().max(1e-30));
            prop_assert_eq!(bnet.load_nodes(), net.load_nodes());
        }
    }
}
