//! Pruning and extraction throughput on the DSP-like block, plus the
//! pruning-threshold ablation (cost of keeping more aggressors).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcv_cells::library::CellLibrary;
use pcv_designs::dsp::{generate, DspConfig};
use pcv_designs::Technology;
use pcv_xtalk::prune::{prune_all, PruneConfig};

fn bench_pruning(c: &mut Criterion) {
    let tech = Technology::c025();
    let lib = CellLibrary::standard_025();
    let block = generate(
        &DspConfig { n_buses: 6, bus_bits: 16, n_random_nets: 150, ..Default::default() },
        &tech,
        &lib,
    );
    let mut group = c.benchmark_group("prune_all");
    for ratio in [0.0f64, 0.02, 0.1] {
        group.bench_with_input(
            BenchmarkId::new("cap_ratio", format!("{ratio}")),
            &ratio,
            |b, &r| {
                let cfg = PruneConfig { cap_ratio: r, max_aggressors: 12 };
                b.iter(|| prune_all(&block.parasitics, &cfg))
            },
        );
    }
    group.finish();

    c.bench_function("dsp_generate_and_extract", |b| {
        b.iter(|| {
            generate(
                &DspConfig { n_buses: 2, bus_bits: 8, n_random_nets: 40, ..Default::default() },
                &tech,
                &lib,
            )
        })
    });
}

criterion_group!(benches, bench_pruning);
criterion_main!(benches);
