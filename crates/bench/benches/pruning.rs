//! Pruning and extraction throughput on the DSP-like block, plus the
//! pruning-threshold ablation (cost of keeping more aggressors).
//!
//! Run with: `cargo bench -p pcv-bench --bench pruning`

use pcv_bench::timing::bench_case;
use pcv_cells::library::CellLibrary;
use pcv_designs::dsp::{generate, DspConfig};
use pcv_designs::Technology;
use pcv_xtalk::prune::{prune_all, PruneConfig};

fn main() {
    let tech = Technology::c025();
    let lib = CellLibrary::standard_025();
    let block = generate(
        &DspConfig { n_buses: 6, bus_bits: 16, n_random_nets: 150, ..Default::default() },
        &tech,
        &lib,
    );
    for ratio in [0.0f64, 0.02, 0.1] {
        let cfg = PruneConfig { cap_ratio: ratio, max_aggressors: 12 };
        bench_case("prune_all", &format!("cap_ratio={ratio}"), 20, || {
            prune_all(&block.parasitics, &cfg)
        });
    }

    bench_case("dsp", "generate_and_extract", 10, || {
        generate(
            &DspConfig { n_buses: 2, bus_bits: 8, n_random_nets: 40, ..Default::default() },
            &tech,
            &lib,
        )
    });
}
