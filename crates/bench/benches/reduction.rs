//! Ablation bench: SyMPVL reduction cost versus Krylov order and cluster
//! size, plus the cost split between reduction and reduced integration.
//!
//! Run with: `cargo bench -p pcv-bench --bench reduction`

use pcv_bench::timing::bench_case;
use pcv_designs::structures::bundle;
use pcv_mor::{simulate, sympvl, MorOptions, RcCluster};
use pcv_netlist::termination::TheveninTermination;
use pcv_netlist::SourceWave;
use pcv_netlist::Termination;
use pcv_xtalk::build_cluster;
use pcv_xtalk::prune::{prune_victim, PruneConfig};

fn cluster(n_wires: usize) -> RcCluster {
    let db = bundle(n_wires, 1500e-6, &pcv_designs::Technology::c025());
    let victim = db.find_net("w1").unwrap();
    let pruned = prune_victim(&db, victim, &PruneConfig { cap_ratio: 0.0, max_aggressors: 12 });
    build_cluster(&db, &pruned, &|_| 0.0, false).rc
}

fn main() {
    for order in [1usize, 2, 4, 8] {
        let rc = cluster(4);
        bench_case("sympvl_reduce", &format!("order={order}"), 20, || {
            sympvl::reduce(&rc, order).unwrap()
        });
    }
    for wires in [3usize, 6, 10] {
        let rc = cluster(wires);
        bench_case("sympvl_reduce", &format!("wires={wires}"), 20, || {
            sympvl::reduce(&rc, 4).unwrap()
        });
    }

    let rc = cluster(4);
    let rom = sympvl::reduce(&rc, 4).unwrap().diagonalize().unwrap();
    let drv = TheveninTermination::new(1000.0, SourceWave::step(0.0, 2.5, 1e-9, 0.2e-9));
    let hold = TheveninTermination::new(1000.0, SourceWave::Dc(0.0));
    let mut terms: Vec<Option<&dyn Termination>> = vec![None; rom.num_ports()];
    terms[0] = Some(&drv);
    terms[1] = Some(&hold);
    bench_case("reduced_transient", "10ns", 20, || {
        simulate(&rom, &terms, 10e-9, &MorOptions::default()).unwrap()
    });
}
