//! Engine benches.
//!
//! Part 1 — analysis engines: the SyMPVL reduced transient versus the full
//! SPICE MNA transient on the same pruned cluster with identical 1 kOhm
//! Thevenin drivers — the wall-clock basis of the paper's 15-25x claims.
//!
//! Part 2 — chip engine: the serial `verify_chip` sweep versus the
//! `pcv-engine` work-stealing pool at several worker counts, plus a
//! warm-cache re-run (every cluster unchanged → every job a cache hit).
//!
//! Run with: `cargo bench -p pcv-bench --bench engines`

use pcv_bench::timing::bench_case;
use pcv_designs::random::{random_cluster, RandomClusterConfig};
use pcv_designs::structures::bundle;
use pcv_designs::Technology;
use pcv_engine::{Engine, EngineConfig};
use pcv_xtalk::prune::{prune_victim, PruneConfig};
use pcv_xtalk::{analyze_glitch, verify_chip, AnalysisContext, AnalysisOptions, EngineKind};

fn bench_analysis_engines(tech: &Technology) {
    for n_agg in [2usize, 6, 12] {
        let cl = random_cluster(
            &RandomClusterConfig { n_aggressors: n_agg, seed: 99, ..Default::default() },
            tech,
        );
        let cluster =
            prune_victim(&cl.db, cl.victim, &PruneConfig { cap_ratio: 0.0, max_aggressors: 12 });
        let ctx = AnalysisContext::fixed_resistance(&cl.db, 1000.0);
        bench_case("glitch_analysis", &format!("mpvl/{n_agg}"), 10, || {
            analyze_glitch(&ctx, &cluster, true, &AnalysisOptions::default()).unwrap()
        });
        let spice_opts =
            AnalysisOptions { engine: EngineKind::Spice, ..AnalysisOptions::default() };
        bench_case("glitch_analysis", &format!("spice/{n_agg}"), 10, || {
            analyze_glitch(&ctx, &cluster, true, &spice_opts).unwrap()
        });
    }
}

fn bench_chip_engine(tech: &Technology) {
    // A bus bundle gives every wire real aggressors, so each victim job
    // carries an actual reduction + transient.
    let db = bundle(16, 2000e-6, tech);
    let victims: Vec<_> = (0..db.num_nets()).map(pcv_netlist::PNetId).collect();
    let ctx = AnalysisContext::fixed_resistance(&db, 1000.0);
    let prune = PruneConfig::default();
    let opts = AnalysisOptions::default();

    bench_case("chip_engine", "serial", 5, || {
        verify_chip(&ctx, &victims, &prune, &opts, 0.1, 0.2).unwrap()
    });
    for workers in [1usize, 2, 4] {
        let engine = Engine::new(EngineConfig { workers, ..Default::default() });
        bench_case("chip_engine", &format!("workers={workers}"), 5, || {
            engine.verify(&ctx, &victims).unwrap()
        });
    }

    // Traced run: same audit with the pcv-trace collector installed, to
    // quantify enabled-mode overhead next to the untraced workers=4 case.
    // The trace artifacts land in target/ for chrome://tracing.
    let traced = Engine::new(EngineConfig { workers: 4, trace: true, ..Default::default() });
    bench_case("chip_engine", "workers=4+trace", 5, || traced.verify(&ctx, &victims).unwrap());
    let report = traced.verify(&ctx, &victims).unwrap();
    let stem = std::env::temp_dir().join("pcv-engines-bench");
    if let (Some(trace), Ok(paths)) = (&report.trace, report.write_profile(&stem)) {
        println!(
            "# traced run: {} spans, {} counters -> {}",
            trace.spans.len(),
            trace.counters.len(),
            paths.iter().map(|p| p.display().to_string()).collect::<Vec<_>>().join(", ")
        );
    }

    // Warm cache: prime the store once, then measure re-runs where every
    // cluster is unchanged and every job is answered from the cache.
    let cache_path = std::env::temp_dir().join("pcv-engine-bench-cache");
    let _ = std::fs::remove_file(&cache_path);
    let engine = Engine::new(EngineConfig {
        workers: 4,
        cache_path: Some(cache_path.clone()),
        ..Default::default()
    });
    let primed = engine.verify(&ctx, &victims).unwrap();
    assert_eq!(primed.stats.cache_misses, victims.len());
    bench_case("chip_engine", "workers=4+warm-cache", 5, || {
        let report = engine.verify(&ctx, &victims).unwrap();
        assert_eq!(report.stats.cache_hits, victims.len());
        report
    });
    let _ = std::fs::remove_file(&cache_path);
}

fn main() {
    let tech = Technology::c025();
    bench_analysis_engines(&tech);
    bench_chip_engine(&tech);
}
