//! Engine speedup bench: the SyMPVL reduced transient versus the full
//! SPICE MNA transient on the same pruned cluster with identical 1 kOhm
//! Thevenin drivers — the wall-clock basis of the paper's 15-25x claims.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcv_designs::random::{random_cluster, RandomClusterConfig};
use pcv_designs::Technology;
use pcv_xtalk::prune::{prune_victim, PruneConfig};
use pcv_xtalk::{analyze_glitch, AnalysisContext, AnalysisOptions, EngineKind};

fn bench_engines(c: &mut Criterion) {
    let tech = Technology::c025();
    let mut group = c.benchmark_group("glitch_analysis");
    group.sample_size(10);
    for n_agg in [2usize, 6, 12] {
        let cl = random_cluster(
            &RandomClusterConfig { n_aggressors: n_agg, seed: 99, ..Default::default() },
            &tech,
        );
        let cluster = prune_victim(
            &cl.db,
            cl.victim,
            &PruneConfig { cap_ratio: 0.0, max_aggressors: 12 },
        );
        let ctx = AnalysisContext::fixed_resistance(&cl.db, 1000.0);
        group.bench_with_input(BenchmarkId::new("mpvl", n_agg), &n_agg, |b, _| {
            b.iter(|| {
                analyze_glitch(&ctx, &cluster, true, &AnalysisOptions::default()).unwrap()
            })
        });
        let spice_opts =
            AnalysisOptions { engine: EngineKind::Spice, ..AnalysisOptions::default() };
        group.bench_with_input(BenchmarkId::new("spice", n_agg), &n_agg, |b, _| {
            b.iter(|| analyze_glitch(&ctx, &cluster, true, &spice_opts).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
