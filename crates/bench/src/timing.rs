//! Minimal wall-clock benchmark harness.
//!
//! The workspace builds with zero external dependencies, so the benches
//! under `benches/` are plain `fn main()` binaries (`harness = false`) that
//! time closures with [`std::time::Instant`] and print one row per case.
//! This is deliberately simple — median-of-N with a warmup pass — which is
//! plenty for the order-of-magnitude engine-speedup claims the paper makes.

use std::time::{Duration, Instant};

/// Result of one timed case.
#[derive(Debug, Clone, Copy)]
pub struct Timing {
    /// Median per-iteration wall time.
    pub median: Duration,
    /// Fastest observed iteration.
    pub min: Duration,
    /// Number of timed iterations.
    pub iters: usize,
}

impl Timing {
    /// Render a duration with an adaptive unit.
    pub fn fmt_duration(d: Duration) -> String {
        let ns = d.as_nanos();
        if ns < 10_000 {
            format!("{ns} ns")
        } else if ns < 10_000_000 {
            format!("{:.1} us", ns as f64 / 1e3)
        } else if ns < 10_000_000_000 {
            format!("{:.2} ms", ns as f64 / 1e6)
        } else {
            format!("{:.2} s", ns as f64 / 1e9)
        }
    }
}

/// Time `f` for `iters` iterations (after one warmup call) and return the
/// median and minimum per-iteration duration.
pub fn time_case<T>(iters: usize, mut f: impl FnMut() -> T) -> Timing {
    assert!(iters > 0, "need at least one iteration");
    std::hint::black_box(f()); // warmup
    let mut samples: Vec<Duration> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        std::hint::black_box(f());
        samples.push(t0.elapsed());
    }
    samples.sort();
    Timing { median: samples[samples.len() / 2], min: samples[0], iters }
}

/// Time a case and print a bench-style row: `group/name  median (min)`.
pub fn bench_case<T>(group: &str, name: &str, iters: usize, f: impl FnMut() -> T) -> Timing {
    let t = time_case(iters, f);
    println!(
        "{:<44} {:>12} (min {:>12}, n={})",
        format!("{group}/{name}"),
        Timing::fmt_duration(t.median),
        Timing::fmt_duration(t.min),
        t.iters
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_measures_and_formats() {
        let t = time_case(3, || std::hint::black_box((0..1000u64).sum::<u64>()));
        assert_eq!(t.iters, 3);
        assert!(t.min <= t.median);
        assert!(Timing::fmt_duration(Duration::from_nanos(500)).contains("ns"));
        assert!(Timing::fmt_duration(Duration::from_micros(500)).contains("us"));
        assert!(Timing::fmt_duration(Duration::from_millis(500)).contains("ms"));
        assert!(Timing::fmt_duration(Duration::from_secs(500)).contains(" s"));
    }
}
