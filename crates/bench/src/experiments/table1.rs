//! Table 1: peak glitch versus coupled wire length (100 µm – 4000 µm) on
//! the Figure 1 structure (victim flanked by two aggressors).

use crate::fixtures::{charlib_for, structure_context, structure_fixture};
use pcv_cells::library::CellLibrary;
use pcv_designs::Technology;
use pcv_xtalk::drivers::DriverModelKind;
use pcv_xtalk::prune::{prune_victim, PruneConfig};
use pcv_xtalk::{analyze_glitch, AnalysisOptions};

/// The paper's coupled lengths (meters).
pub const LENGTHS: [f64; 4] = [100e-6, 1000e-6, 2000e-6, 4000e-6];

/// One row: `(length_m, peak_glitch_v)`.
pub type Row = (f64, f64);

/// Run the sweep with the nonlinear cell models (victim INVX2 holding low,
/// aggressors BUFX8 rising).
///
/// # Panics
///
/// Panics on analysis failure (experiment harness context).
pub fn run() -> Vec<Row> {
    let tech = Technology::c025();
    let lib = CellLibrary::standard_025();
    let charlib = charlib_for(&["INVX2", "BUFX8"]);
    LENGTHS
        .iter()
        .map(|&len| {
            let fx = structure_fixture(len, &tech, "INVX2", "BUFX8");
            let ctx = structure_context(&fx, &lib, &charlib, DriverModelKind::Nonlinear);
            let victim = fx.db.find_net("v").expect("victim exists");
            let cluster = prune_victim(&fx.db, victim, &PruneConfig::default());
            let res = analyze_glitch(&ctx, &cluster, true, &AnalysisOptions::default())
                .expect("glitch analysis succeeds");
            (len, res.peak)
        })
        .collect()
}

/// Format paper-style rows.
pub fn to_text(rows: &[Row]) -> String {
    let mut out = String::from("Table 1: coupled wire length vs peak glitch (Fig. 1 structure)\n");
    out.push_str("  ckt     length      glitch\n");
    for (k, &(len, peak)) in rows.iter().enumerate() {
        out.push_str(&format!("  ckt{:<4} {:>7.0} um {:>8.3} V\n", k + 1, len * 1e6, peak));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glitch_grows_with_coupled_length() {
        // Use the two shortest lengths to keep the test quick; the full
        // sweep runs in the `table1` binary.
        let tech = Technology::c025();
        let lib = CellLibrary::standard_025();
        let charlib = charlib_for(&["INVX2", "BUFX8"]);
        let mut peaks = Vec::new();
        for &len in &[100e-6, 1000e-6] {
            let fx = structure_fixture(len, &tech, "INVX2", "BUFX8");
            let ctx = structure_context(&fx, &lib, &charlib, DriverModelKind::Nonlinear);
            let victim = fx.db.find_net("v").unwrap();
            let cluster = prune_victim(&fx.db, victim, &PruneConfig::default());
            let res = analyze_glitch(&ctx, &cluster, true, &AnalysisOptions::default()).unwrap();
            peaks.push(res.peak);
        }
        assert!(
            peaks[1] > 1.3 * peaks[0],
            "1000um glitch {} should clearly exceed 100um glitch {}",
            peaks[1],
            peaks[0]
        );
        let text = to_text(&[(100e-6, peaks[0]), (1000e-6, peaks[1])]);
        assert!(text.contains("ckt1"));
    }
}
