//! One module per table/figure of the paper's evaluation.

pub mod ablation;
pub mod fig3;
pub mod fig45;
pub mod fig67;
pub mod pruning;
pub mod stats;
pub mod table1;
pub mod table2;
pub mod table34;

/// Experiment scale: `Quick` keeps runtimes interactive; `Full` matches the
/// paper's population sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced sweep for interactive runs and CI.
    Quick,
    /// Paper-scale sweep (use `--release`).
    Full,
}

impl Scale {
    /// Parse from CLI args: `--full` selects [`Scale::Full`].
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--full") {
            Scale::Full
        } else {
            Scale::Quick
        }
    }
}
