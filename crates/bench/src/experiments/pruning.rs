//! The Section 3 pruning-effectiveness statistic: average cluster size
//! before and after capacitance-ratio pruning on the DSP-like block, plus
//! the threshold ablation (how cluster size and decoupled capacitance trade
//! against the pruning threshold).

use pcv_cells::library::CellLibrary;
use pcv_designs::dsp::{generate, DspConfig};
use pcv_designs::Technology;
use pcv_xtalk::prune::{prune_all, PruneConfig, PruningStats};

/// Result at one threshold.
#[derive(Debug, Clone)]
pub struct ThresholdPoint {
    /// The capacitance-ratio threshold.
    pub cap_ratio: f64,
    /// Cluster statistics at that threshold.
    pub stats: PruningStats,
    /// Mean decoupled capacitance per cluster (farads).
    pub mean_decoupled: f64,
}

/// Run the sweep over thresholds on a generated block.
pub fn run() -> Vec<ThresholdPoint> {
    let tech = Technology::c025();
    let lib = CellLibrary::standard_025();
    let block = generate(
        &DspConfig { n_buses: 6, bus_bits: 16, n_random_nets: 120, ..Default::default() },
        &tech,
        &lib,
    );
    [0.0, 0.005, 0.01, 0.02, 0.05, 0.1]
        .iter()
        .map(|&cap_ratio| {
            let cfg = PruneConfig { cap_ratio, max_aggressors: 12 };
            let clusters = prune_all(&block.parasitics, &cfg);
            let mean_decoupled = clusters.iter().map(|c| c.decoupled_cap).sum::<f64>()
                / clusters.len().max(1) as f64;
            ThresholdPoint { cap_ratio, stats: PruningStats::compute(&clusters), mean_decoupled }
        })
        .collect()
}

/// Paper-style text.
pub fn to_text(points: &[ThresholdPoint]) -> String {
    let mut out = String::from(
        "Pruning effectiveness (Section 3): cluster sizes vs capacitance-ratio threshold\n",
    );
    out.push_str(
        "  threshold   component   neighbors   mean after   max after   active   decoupled(fF)\n",
    );
    for p in points {
        out.push_str(&format!(
            "  {:>9.3} {:>11.1} {:>11.1} {:>12.2} {:>11} {:>8} {:>15.2}\n",
            p.cap_ratio,
            p.stats.mean_component,
            p.stats.mean_before,
            p.stats.mean_after,
            p.stats.max_after,
            p.stats.active_clusters,
            p.mean_decoupled * 1e15,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tighter_thresholds_shrink_clusters() {
        let points = run();
        assert!(points.len() >= 3);
        // Threshold 0 keeps everything; larger thresholds shrink clusters
        // monotonically and decouple more capacitance.
        for w in points.windows(2) {
            assert!(w[1].stats.mean_after <= w[0].stats.mean_after + 1e-12);
            assert!(w[1].mean_decoupled >= w[0].mean_decoupled - 1e-30);
        }
        // The default threshold leaves small clusters (the 2–5 net story).
        let def = points.iter().find(|p| (p.cap_ratio - 0.02).abs() < 1e-12).unwrap();
        assert!(def.stats.mean_after < def.stats.mean_before);
        // Our synthetic block is bus-heavy, so clusters are a bit larger
        // than the paper's 2-5; they must still be single-digit.
        assert!(def.stats.mean_after <= 8.0, "got {}", def.stats.mean_after);
        let text = to_text(&points);
        assert!(text.contains("threshold"));
    }
}
