//! Table 2: interconnect delay with and without coupling for the same
//! structures as Table 1. "Without" grounds the coupling capacitance; the
//! worst case switches the aggressors opposite to the victim.

use super::table1::LENGTHS;
use pcv_designs::structures::sandwich;
use pcv_designs::Technology;
use pcv_xtalk::prune::{prune_victim, PruneConfig};
use pcv_xtalk::{analyze_delay, AnalysisContext, AnalysisOptions, DelayMode};

/// One row of the table.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Coupled length (meters).
    pub length: f64,
    /// Rise delay without coupling (seconds).
    pub rise_without: f64,
    /// Rise delay with worst-case coupling.
    pub rise_with: f64,
    /// Fall delay without coupling.
    pub fall_without: f64,
    /// Fall delay with worst-case coupling.
    pub fall_with: f64,
}

/// Run the sweep with 500 Ω linear drivers (emphasizing the interconnect,
/// like the paper's controlled experiment).
///
/// # Panics
///
/// Panics on analysis failure (experiment harness context).
pub fn run() -> Vec<Row> {
    let tech = Technology::c025();
    LENGTHS.iter().map(|&len| run_length(len, &tech)).collect()
}

/// One length of the sweep.
///
/// # Panics
///
/// Panics on analysis failure.
pub fn run_length(length: f64, tech: &Technology) -> Row {
    let db = sandwich(length, tech);
    let victim = db.find_net("v").expect("victim exists");
    let cluster = prune_victim(&db, victim, &PruneConfig::default());
    let ctx = AnalysisContext::fixed_resistance(&db, 500.0);
    let opts = AnalysisOptions { tstop: 20e-9, ..Default::default() };
    let delay = |rising: bool, mode: DelayMode| -> f64 {
        analyze_delay(&ctx, &cluster, rising, mode, &opts).expect("delay analysis succeeds").delay
    };
    Row {
        length,
        rise_without: delay(true, DelayMode::Decoupled),
        rise_with: delay(true, DelayMode::Coupled { aggressors_opposite: true }),
        fall_without: delay(false, DelayMode::Decoupled),
        fall_with: delay(false, DelayMode::Coupled { aggressors_opposite: true }),
    }
}

/// Format paper-style rows.
pub fn to_text(rows: &[Row]) -> String {
    let mut out = String::from("Table 2: interconnect delays, decoupled vs worst-case coupling\n");
    out.push_str("  ckt     length   rise w/o     rise w/     fall w/o     fall w/\n");
    for (k, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "  ckt{:<4} {:>6.0}um {:>9.4}ns {:>10.4}ns {:>11.4}ns {:>10.4}ns\n",
            k + 1,
            r.length * 1e6,
            r.rise_without * 1e9,
            r.rise_with * 1e9,
            r.fall_without * 1e9,
            r.fall_with * 1e9,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coupling_degrades_delay_significantly() {
        let row = run_length(1000e-6, &Technology::c025());
        assert!(
            row.rise_with > 1.2 * row.rise_without,
            "worst-case coupling slows the rise: {} vs {}",
            row.rise_with,
            row.rise_without
        );
        assert!(
            row.fall_with > 1.2 * row.fall_without,
            "and the fall: {} vs {}",
            row.fall_with,
            row.fall_without
        );
        let text = to_text(&[row]);
        assert!(text.contains("ckt1"));
    }
}
