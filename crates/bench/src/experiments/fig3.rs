//! Figure 3: distribution of percentage error between SPICE and MPVL on
//! crosstalk peaks for coupled networks with 2–12 aggressors, both engines
//! driven by identical 1 kΩ linear Thevenin models (isolating the
//! reduced-order-modeling error), plus the CPU-time speedup.

use super::stats::{ErrStats, Histogram};
use super::Scale;
use pcv_designs::random::{random_cluster, RandomClusterConfig};
use pcv_designs::Technology;
use pcv_xtalk::prune::{prune_victim, PruneConfig};
use pcv_xtalk::{analyze_glitch, AnalysisContext, AnalysisOptions, EngineKind};
use std::time::Duration;

/// One evaluated network.
#[derive(Debug, Clone)]
pub struct Case {
    /// Seed / case index.
    pub index: usize,
    /// Number of aggressors.
    pub n_aggressors: usize,
    /// SPICE peak (volts).
    pub spice_peak: f64,
    /// MPVL peak (volts).
    pub mpvl_peak: f64,
    /// SPICE wall time.
    pub spice_time: Duration,
    /// MPVL wall time.
    pub mpvl_time: Duration,
}

impl Case {
    /// The paper's error convention: negative means MPVL *overestimates*
    /// the peak relative to SPICE.
    pub fn err_pct(&self) -> f64 {
        100.0 * (self.spice_peak - self.mpvl_peak) / self.spice_peak.abs().max(1e-9)
    }
}

/// Full experiment result.
#[derive(Debug, Clone)]
pub struct Fig3 {
    /// All evaluated networks.
    pub cases: Vec<Case>,
}

impl Fig3 {
    /// Error statistics across cases (percent).
    pub fn stats(&self) -> ErrStats {
        let errs: Vec<f64> = self.cases.iter().map(Case::err_pct).collect();
        ErrStats::of(&errs)
    }

    /// Mean of |error| (the paper's "average percentage error").
    pub fn avg_abs_err(&self) -> f64 {
        if self.cases.is_empty() {
            return 0.0;
        }
        self.cases.iter().map(|c| c.err_pct().abs()).sum::<f64>() / self.cases.len() as f64
    }

    /// Largest |error| (percent).
    pub fn max_abs_err(&self) -> f64 {
        self.cases.iter().map(|c| c.err_pct().abs()).fold(0.0, f64::max)
    }

    /// Aggregate CPU-time speedup (total SPICE time / total MPVL time).
    pub fn speedup(&self) -> f64 {
        let s: f64 = self.cases.iter().map(|c| c.spice_time.as_secs_f64()).sum();
        let m: f64 = self.cases.iter().map(|c| c.mpvl_time.as_secs_f64()).sum();
        s / m.max(1e-12)
    }

    /// The case with the largest |error| — Figure 4/5 plots its waveforms.
    pub fn worst_case(&self) -> Option<&Case> {
        self.cases.iter().max_by(|a, b| {
            a.err_pct().abs().partial_cmp(&b.err_pct().abs()).expect("finite errors")
        })
    }

    /// Paper-style text output.
    pub fn to_text(&self) -> String {
        let mut hist = Histogram::new(-2.0, 2.0, 16);
        for c in &self.cases {
            hist.add(c.err_pct());
        }
        let mut out = hist.to_text("Figure 3: % error of crosstalk peaks, SPICE vs MPVL");
        out.push_str(&format!(
            "  cases: {}  avg |err|: {:.3}%  max |err|: {:.3}%  speedup: {:.1}x\n",
            self.cases.len(),
            self.avg_abs_err(),
            self.max_abs_err(),
            self.speedup()
        ));
        out
    }
}

/// Number of networks at each scale (the paper simulated 113).
pub fn num_cases(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 20,
        Scale::Full => 113,
    }
}

/// Run the experiment.
///
/// # Panics
///
/// Panics on analysis failure (harness context).
pub fn run(scale: Scale) -> Fig3 {
    let tech = Technology::c025();
    let n = num_cases(scale);
    let mut cases = Vec::with_capacity(n);
    for i in 0..n {
        let n_agg = 2 + (i % 11); // spans 2..=12
        let cfg = RandomClusterConfig {
            n_aggressors: n_agg,
            seed: 1000 + i as u64,
            ..Default::default()
        };
        let cl = random_cluster(&cfg, &tech);
        let ctx = AnalysisContext::fixed_resistance(&cl.db, 1000.0);
        // Keep every generated aggressor in the cluster: the pruning study
        // is separate; Figure 3 validates the engine on given clusters.
        let prune = PruneConfig { cap_ratio: 0.0, max_aggressors: 12 };
        let cluster = prune_victim(&cl.db, cl.victim, &prune);

        let mor_opts = AnalysisOptions::default();
        let mor = analyze_glitch(&ctx, &cluster, true, &mor_opts).expect("mpvl analysis succeeds");
        let spice_opts =
            AnalysisOptions { engine: EngineKind::Spice, ..AnalysisOptions::default() };
        let spice =
            analyze_glitch(&ctx, &cluster, true, &spice_opts).expect("spice analysis succeeds");
        if spice.peak.abs() < 0.02 {
            continue; // no meaningful crosstalk in this random draw
        }
        cases.push(Case {
            index: i,
            n_aggressors: n_agg,
            spice_peak: spice.peak,
            mpvl_peak: mor.peak,
            spice_time: spice.elapsed,
            mpvl_time: mor.elapsed,
        });
    }
    Fig3 { cases }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_convention_matches_paper() {
        let c = Case {
            index: 0,
            n_aggressors: 2,
            spice_peak: 1.0,
            mpvl_peak: 1.1, // MPVL overestimates
            spice_time: Duration::from_secs(1),
            mpvl_time: Duration::from_millis(100),
        };
        assert!(c.err_pct() < 0.0, "overestimate is negative error");
        let f = Fig3 { cases: vec![c] };
        assert!((f.speedup() - 10.0).abs() < 0.5);
        assert!(f.worst_case().is_some());
        assert!(f.to_text().contains("speedup"));
    }

    #[test]
    fn small_run_has_tiny_errors() {
        // Three cases are enough to check the engines agree closely.
        let tech = Technology::c025();
        let mut worst: f64 = 0.0;
        for i in 0..3 {
            let cfg = RandomClusterConfig {
                n_aggressors: 2 + i,
                seed: 7 + i as u64,
                ..Default::default()
            };
            let cl = random_cluster(&cfg, &tech);
            let ctx = AnalysisContext::fixed_resistance(&cl.db, 1000.0);
            let prune = PruneConfig { cap_ratio: 0.0, max_aggressors: 12 };
            let cluster = prune_victim(&cl.db, cl.victim, &prune);
            let mor = analyze_glitch(&ctx, &cluster, true, &AnalysisOptions::default()).unwrap();
            let spice_opts =
                AnalysisOptions { engine: EngineKind::Spice, ..AnalysisOptions::default() };
            let spice = analyze_glitch(&ctx, &cluster, true, &spice_opts).unwrap();
            if spice.peak.abs() > 0.02 {
                worst = worst.max((spice.peak - mor.peak).abs() / spice.peak.abs() * 100.0);
            }
        }
        assert!(worst < 3.0, "engines should agree within a few %: {worst}");
    }
}
