//! Small statistics helpers shared by the experiments.

/// Summary statistics of a sample.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrStats {
    /// Sample count.
    pub n: usize,
    /// Mean.
    pub avg: f64,
    /// Standard deviation (population).
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl ErrStats {
    /// Compute statistics; zeroed for an empty sample.
    pub fn of(xs: &[f64]) -> ErrStats {
        if xs.is_empty() {
            return ErrStats { n: 0, avg: 0.0, std: 0.0, min: 0.0, max: 0.0 };
        }
        let n = xs.len() as f64;
        let avg = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - avg) * (x - avg)).sum::<f64>() / n;
        ErrStats {
            n: xs.len(),
            avg,
            std: var.sqrt(),
            min: xs.iter().cloned().fold(f64::INFINITY, f64::min),
            max: xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

/// A fixed-width histogram over `[lo, hi)` with `bins` buckets plus
/// under/overflow.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<usize>,
    under: usize,
    over: usize,
}

impl Histogram {
    /// Create an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `hi <= lo` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(hi > lo && bins > 0, "invalid histogram bounds");
        Histogram { lo, hi, counts: vec![0; bins], under: 0, over: 0 }
    }

    /// Add a sample.
    pub fn add(&mut self, x: f64) {
        if x < self.lo {
            self.under += 1;
        } else if x >= self.hi {
            self.over += 1;
        } else {
            let bins = self.counts.len();
            let k = ((x - self.lo) / (self.hi - self.lo) * bins as f64) as usize;
            self.counts[k.min(bins - 1)] += 1;
        }
    }

    /// Total samples.
    pub fn total(&self) -> usize {
        self.counts.iter().sum::<usize>() + self.under + self.over
    }

    /// Render as an ASCII bar chart with per-bin percentages.
    pub fn to_text(&self, label: &str) -> String {
        let mut out = format!("{label}\n");
        let total = self.total().max(1);
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        if self.under > 0 {
            out.push_str(&format!(
                "  < {:>8.2}: {:>5.1}% {}\n",
                self.lo,
                100.0 * self.under as f64 / total as f64,
                "#".repeat(60 * self.under / total)
            ));
        }
        for (k, &c) in self.counts.iter().enumerate() {
            let a = self.lo + width * k as f64;
            out.push_str(&format!(
                "  [{:>7.2},{:>7.2}): {:>5.1}% {}\n",
                a,
                a + width,
                100.0 * c as f64 / total as f64,
                "#".repeat(60 * c / total)
            ));
        }
        if self.over > 0 {
            out.push_str(&format!(
                "  >={:>8.2}: {:>5.1}% {}\n",
                self.hi,
                100.0 * self.over as f64 / total as f64,
                "#".repeat(60 * self.over / total)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_known_sample() {
        let s = ErrStats::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.n, 3);
        assert!((s.avg - 2.0).abs() < 1e-12);
        assert!((s.std - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(ErrStats::of(&[]).n, 0);
    }

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [-1.0, 0.0, 1.9, 2.0, 9.9, 10.0, 42.0] {
            h.add(x);
        }
        assert_eq!(h.total(), 7);
        let text = h.to_text("t");
        assert!(text.contains('%'));
        assert!(text.starts_with("t\n"));
    }
}
