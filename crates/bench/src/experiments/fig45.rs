//! Figures 4 and 5: overlay of the full crosstalk waveform from MPVL and
//! SPICE for the Figure 3 case with the largest peak error, demonstrating
//! that even there the waveforms coincide except for a negligible peak
//! difference.

use super::fig3;
use super::Scale;
use pcv_designs::random::{random_cluster, RandomClusterConfig};
use pcv_designs::Technology;
use pcv_netlist::Waveform;
use pcv_xtalk::prune::{prune_victim, PruneConfig};
use pcv_xtalk::{analyze_glitch, AnalysisContext, AnalysisOptions, EngineKind};

/// The two waveforms of the worst-error case.
#[derive(Debug, Clone)]
pub struct Fig45 {
    /// Case index within the Figure 3 population.
    pub case_index: usize,
    /// SPICE victim waveform.
    pub spice: Waveform,
    /// MPVL victim waveform.
    pub mpvl: Waveform,
}

impl Fig45 {
    /// Peak difference (volts).
    pub fn peak_difference(&self) -> f64 {
        let (_, sp) = self.spice.peak_deviation(0.0);
        let (_, mp) = self.mpvl.peak_deviation(0.0);
        (sp - mp).abs()
    }

    /// Render as CSV: `time_ns,spice_v,mpvl_v` on a uniform grid.
    pub fn to_csv(&self, points: usize) -> String {
        let t_end = *self.spice.times().last().expect("non-empty waveform");
        let mut out = String::from("time_ns,spice_v,mpvl_v\n");
        for k in 0..=points {
            let t = t_end * k as f64 / points as f64;
            out.push_str(&format!(
                "{:.4},{:.6},{:.6}\n",
                t * 1e9,
                self.spice.value_at(t),
                self.mpvl.value_at(t)
            ));
        }
        out
    }
}

/// Re-run the worst case of a Figure 3 population and capture waveforms.
///
/// # Panics
///
/// Panics when the population produced no cases, or on engine failure.
pub fn run(fig3_result: &fig3::Fig3) -> Fig45 {
    let worst = fig3_result.worst_case().expect("population is non-empty");
    let tech = Technology::c025();
    let cfg = RandomClusterConfig {
        n_aggressors: worst.n_aggressors,
        seed: 1000 + worst.index as u64,
        ..Default::default()
    };
    let cl = random_cluster(&cfg, &tech);
    let ctx = AnalysisContext::fixed_resistance(&cl.db, 1000.0);
    let prune = PruneConfig { cap_ratio: 0.0, max_aggressors: 12 };
    let cluster = prune_victim(&cl.db, cl.victim, &prune);
    let mor = analyze_glitch(&ctx, &cluster, true, &AnalysisOptions::default())
        .expect("mpvl analysis succeeds");
    let spice_opts = AnalysisOptions { engine: EngineKind::Spice, ..AnalysisOptions::default() };
    let spice = analyze_glitch(&ctx, &cluster, true, &spice_opts).expect("spice analysis succeeds");
    Fig45 { case_index: worst.index, spice: spice.waveform, mpvl: mor.waveform }
}

/// Convenience: run a small Figure 3 population and extract the overlay.
pub fn run_standalone(scale: Scale) -> Fig45 {
    let population = fig3::run(scale);
    run(&population)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_has_expected_shape() {
        let w = Waveform::from_samples(vec![0.0, 1e-9, 2e-9], vec![0.0, 1.0, 0.0]);
        let f = Fig45 { case_index: 0, spice: w.clone(), mpvl: w };
        let csv = f.to_csv(10);
        assert_eq!(csv.lines().count(), 12);
        assert!(csv.starts_with("time_ns"));
        assert_eq!(f.peak_difference(), 0.0);
    }
}
