//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Krylov order** — reduced-model accuracy versus `block_iters`
//!    (each Lanczos block matches two more moments).
//! 2. **Lanczos vs Arnoldi** — SyMPVL against the PRIMA-style baseline at
//!    equal order.
//! 3. **Orderings** — LU fill under natural, RCM and minimum-degree
//!    orderings of a cluster MNA pattern.

use pcv_designs::structures::sandwich;
use pcv_designs::Technology;
use pcv_mor::{reduce_arnoldi, sympvl, RcCluster};
use pcv_sparse::order::{min_degree, rcm};
use pcv_sparse::SparseLu;
use pcv_xtalk::build_cluster;
use pcv_xtalk::prune::{prune_victim, PruneConfig};

/// Accuracy of a reduced model versus the exact transfer at `s`.
fn transfer_err(cl: &RcCluster, rom: &pcv_mor::ReducedModel, s: f64) -> f64 {
    let exact = cl.exact_transfer(s).expect("exact transfer");
    let h = rom.transfer(s).expect("reduced transfer");
    let scale = exact[(0, 0)].abs();
    let mut err = 0.0f64;
    for i in 0..cl.num_ports() {
        for j in 0..cl.num_ports() {
            let denom = exact[(i, j)].abs().max(1e-6 * scale);
            err = err.max((h[(i, j)] - exact[(i, j)]).abs() / denom);
        }
    }
    err
}

/// One row of the order sweep.
#[derive(Debug, Clone)]
pub struct OrderRow {
    /// Block iterations requested.
    pub block_iters: usize,
    /// Resulting reduced order (states).
    pub lanczos_order: usize,
    /// SyMPVL max relative transfer error at 2 GHz.
    pub lanczos_err: f64,
    /// Arnoldi order at the same iteration count.
    pub arnoldi_order: usize,
    /// Arnoldi max relative transfer error.
    pub arnoldi_err: f64,
}

/// Run the order sweep on a 2 mm Figure-1 cluster.
pub fn order_sweep() -> Vec<OrderRow> {
    let tech = Technology::c025();
    let db = sandwich(2000e-6, &tech);
    let victim = db.find_net("v").expect("victim");
    let cluster = prune_victim(&db, victim, &PruneConfig::default());
    let rc = build_cluster(&db, &cluster, &|_| 0.0, false).rc;
    let s = 2e9;
    [1usize, 2, 3, 4, 6, 8]
        .iter()
        .map(|&k| {
            let lan = sympvl::reduce(&rc, k).expect("lanczos reduces");
            let arn = reduce_arnoldi(&rc, k).expect("arnoldi reduces");
            OrderRow {
                block_iters: k,
                lanczos_order: lan.order(),
                lanczos_err: transfer_err(&rc, &lan, s),
                arnoldi_order: arn.order(),
                arnoldi_err: transfer_err(&rc, &arn, s),
            }
        })
        .collect()
}

/// LU fill (nnz of L+U) of a cluster conductance-like pattern under the
/// three orderings: `(natural, rcm, min_degree)`.
pub fn ordering_fill() -> (usize, usize, usize) {
    let tech = Technology::c025();
    let db = sandwich(3000e-6, &tech);
    let victim = db.find_net("v").expect("victim");
    let cluster = prune_victim(&db, victim, &PruneConfig::default());
    let rc = build_cluster(&db, &cluster, &|_| 0.0, false).rc;
    // Use G + C/h as a representative transient Jacobian pattern.
    let a = rc.conductance_matrix().add_scaled(1e12, &rc.capacitance_matrix());
    let natural = SparseLu::factor(&a, 1e-3).expect("factor").nnz();
    let p = rcm(&a);
    let with_rcm = SparseLu::factor(&a.permute_sym(&p), 1e-3).expect("factor").nnz();
    let p = min_degree(&a);
    let with_md = SparseLu::factor(&a.permute_sym(&p), 1e-3).expect("factor").nnz();
    (natural, with_rcm, with_md)
}

/// Render the ablation report.
pub fn to_text(rows: &[OrderRow], fill: (usize, usize, usize)) -> String {
    let mut out =
        String::from("Ablation 1: reduction accuracy vs Krylov order (2 GHz, 2 mm cluster)\n");
    out.push_str("  iters   lanczos(order, max rel err)    arnoldi(order, max rel err)\n");
    for r in rows {
        out.push_str(&format!(
            "  {:>5}   q={:<3} err={:<12.3e}       q={:<3} err={:<12.3e}\n",
            r.block_iters, r.lanczos_order, r.lanczos_err, r.arnoldi_order, r.arnoldi_err
        ));
    }
    out.push_str(&format!(
        "Ablation 2: LU fill by ordering — natural {} nnz, rcm {} nnz, min-degree {} nnz\n",
        fill.0, fill.1, fill.2
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanczos_error_decreases_with_order() {
        let rows = order_sweep();
        assert!(rows.len() >= 4);
        let first = rows.first().unwrap();
        let last = rows.last().unwrap();
        assert!(
            last.lanczos_err < first.lanczos_err * 0.1 || last.lanczos_err < 1e-8,
            "order helps: {} -> {}",
            first.lanczos_err,
            last.lanczos_err
        );
        // At equal block count Lanczos is at least as accurate as Arnoldi
        // (two moments per block vs one) on most rows.
        let wins = rows.iter().filter(|r| r.lanczos_err <= r.arnoldi_err * 1.5 + 1e-12).count();
        assert!(wins * 2 >= rows.len(), "lanczos competitive in {wins}/{} rows", rows.len());
    }

    #[test]
    fn orderings_reduce_fill() {
        let (nat, with_rcm, with_md) = ordering_fill();
        assert!(with_rcm < nat, "rcm reduces fill: {with_rcm} vs {nat}");
        assert!(with_md < nat, "min-degree reduces fill: {with_md} vs {nat}");
        let rows = order_sweep();
        let text = to_text(&rows, (nat, with_rcm, with_md));
        assert!(text.contains("Ablation"));
    }
}
