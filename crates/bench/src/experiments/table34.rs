//! Tables 3 and 4: driver-model accuracy against transistor-level SPICE for
//! rising glitch analysis, swept over wire lengths (10 µm – 5000 µm) and
//! library cells.
//!
//! Table 3 uses the timing-library (linear resistor) driver model; Table 4
//! the pre-characterized nonlinear model. Errors are reported per glitch
//! magnitude bin, as in the paper.

use super::stats::ErrStats;
use super::Scale;
use crate::fixtures::{charlib_for, structure_context, structure_fixture};
use pcv_cells::charlib::CharLibrary;
use pcv_cells::library::CellLibrary;
use pcv_designs::Technology;
use pcv_xtalk::drivers::DriverModelKind;
use pcv_xtalk::prune::{prune_victim, PruneConfig};
use pcv_xtalk::{analyze_glitch, AnalysisOptions, EngineKind};

/// One evaluated case.
#[derive(Debug, Clone)]
pub struct Case {
    /// Victim driver cell name.
    pub cell: String,
    /// Coupled length (meters).
    pub length: f64,
    /// Transistor-level SPICE reference peak (volts).
    pub reference: f64,
    /// Driver-model peak (volts).
    pub model: f64,
}

impl Case {
    /// Signed percentage error of the model versus the reference.
    pub fn err_pct(&self) -> f64 {
        100.0 * (self.model - self.reference) / self.reference.abs().max(1e-9)
    }
}

/// The study's result: all cases plus the per-bin statistics.
#[derive(Debug, Clone)]
pub struct Study {
    /// Which model was evaluated.
    pub model: DriverModelKind,
    /// All evaluated cases.
    pub cases: Vec<Case>,
}

/// Glitch-magnitude bin edges (volts), paper-style.
pub const BINS: [(f64, f64); 4] = [(0.05, 0.3), (0.3, 0.6), (0.6, 1.0), (1.0, 10.0)];

impl Study {
    /// Error statistics per glitch bin: `(bin, stats)`.
    pub fn binned(&self) -> Vec<((f64, f64), ErrStats)> {
        BINS.iter()
            .map(|&(lo, hi)| {
                let errs: Vec<f64> = self
                    .cases
                    .iter()
                    .filter(|c| c.reference >= lo && c.reference < hi)
                    .map(Case::err_pct)
                    .collect();
                ((lo, hi), ErrStats::of(&errs))
            })
            .collect()
    }

    /// Fraction of cases with |error| below `pct` percent.
    pub fn fraction_within(&self, pct: f64) -> f64 {
        if self.cases.is_empty() {
            return 0.0;
        }
        self.cases.iter().filter(|c| c.err_pct().abs() <= pct).count() as f64
            / self.cases.len() as f64
    }

    /// Number of cases with |error| above `pct` percent.
    pub fn count_above(&self, pct: f64) -> usize {
        self.cases.iter().filter(|c| c.err_pct().abs() > pct).count()
    }

    /// Render the paper-style table.
    pub fn to_text(&self, title: &str) -> String {
        let mut out = format!("{title} ({} cases)\n", self.cases.len());
        out.push_str("  glitch bin (V)       n     avg err%   std err%   min err%   max err%\n");
        for ((lo, hi), s) in self.binned() {
            if s.n == 0 {
                continue;
            }
            out.push_str(&format!(
                "  [{lo:>4.2}, {hi:>4.2}) {:>8} {:>10.2} {:>10.2} {:>10.2} {:>10.2}\n",
                s.n, s.avg, s.std, s.min, s.max
            ));
        }
        out.push_str(&format!(
            "  within 10%% of SPICE: {:.1}%%; cases beyond 50%%: {}\n",
            100.0 * self.fraction_within(10.0),
            self.count_above(50.0)
        ));
        out
    }
}

/// Cells swept at each scale.
pub fn cells_for(scale: Scale) -> Vec<&'static str> {
    match scale {
        Scale::Quick => vec!["INVX1", "INVX4", "INVX16", "BUFX4", "NAND2X4", "NOR2X4"],
        Scale::Full => vec![
            "INVX1", "INVX1.5", "INVX2", "INVX3", "INVX4", "INVX6", "INVX8", "INVX12", "INVX16",
            "INVX20", "INVX24", "INVX32", "INVX40", "INVX48", "BUFX1", "BUFX2", "BUFX3", "BUFX4",
            "BUFX6", "BUFX8", "BUFX12", "BUFX16", "BUFX20", "BUFX24", "BUFX32", "BUFX40", "BUFX48",
            "NAND2X1", "NAND2X2", "NAND2X3", "NAND2X4", "NAND2X6", "NAND2X8", "NAND2X12",
            "NAND2X16", "NAND2X20", "NAND2X24", "NOR2X1", "NOR2X2", "NOR2X3", "NOR2X4", "NOR2X6",
            "NOR2X8", "NOR2X12", "NOR2X16", "NOR2X20", "NOR2X24", "TBUFX2", "TBUFX4", "TBUFX8",
            "TBUFX16", "TBUFX32",
        ],
    }
}

/// Wire lengths swept at each scale (meters), 10 µm – 5000 µm as in the
/// paper.
pub fn lengths_for(scale: Scale) -> Vec<f64> {
    let n = match scale {
        Scale::Quick => 6,
        Scale::Full => 60,
    };
    (0..n)
        .map(|k| {
            let f = k as f64 / (n - 1) as f64;
            10e-6 * (5000.0f64 / 10.0).powf(f)
        })
        .collect()
}

/// Run the study for one driver model kind.
///
/// # Panics
///
/// Panics on characterization or analysis failure (harness context).
pub fn run(model: DriverModelKind, scale: Scale) -> Study {
    let tech = Technology::c025();
    let lib = CellLibrary::standard_025();
    let cells = cells_for(scale);
    let mut names: Vec<&str> = cells.clone();
    names.push("BUFX8"); // fixed aggressor driver
    names.dedup();
    let charlib: CharLibrary = charlib_for(&names);
    let opts_model = AnalysisOptions::default();
    let opts_ref = AnalysisOptions { engine: EngineKind::Spice, ..AnalysisOptions::default() };

    let mut cases = Vec::new();
    for cell in &cells {
        for &len in &lengths_for(scale) {
            let fx = structure_fixture(len, &tech, cell, "BUFX8");
            let victim = fx.db.find_net("v").expect("victim exists");
            let cluster = prune_victim(&fx.db, victim, &PruneConfig::default());

            let ref_ctx = structure_context(&fx, &lib, &charlib, DriverModelKind::TransistorLevel);
            let reference = analyze_glitch(&ref_ctx, &cluster, true, &opts_ref)
                .expect("reference analysis succeeds")
                .peak;
            let model_ctx = structure_context(&fx, &lib, &charlib, model);
            let modeled = analyze_glitch(&model_ctx, &cluster, true, &opts_model)
                .expect("model analysis succeeds")
                .peak;
            if reference.abs() >= 0.05 {
                cases.push(Case { cell: cell.to_string(), length: len, reference, model: modeled });
            }
        }
    }
    Study { model, cases }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_and_fractions() {
        let study = Study {
            model: DriverModelKind::Nonlinear,
            cases: vec![
                Case { cell: "a".into(), length: 1.0, reference: 0.2, model: 0.21 },
                Case { cell: "a".into(), length: 1.0, reference: 0.7, model: 0.9 },
                Case { cell: "a".into(), length: 1.0, reference: 1.5, model: 1.5 },
            ],
        };
        assert!((study.cases[0].err_pct() - 5.0).abs() < 1e-9);
        assert_eq!(study.fraction_within(10.0), 2.0 / 3.0);
        assert_eq!(study.count_above(20.0), 1);
        let text = study.to_text("t");
        assert!(text.contains("avg err%"));
        let bins = study.binned();
        assert_eq!(bins.len(), 4);
        assert_eq!(bins[0].1.n, 1);
    }

    #[test]
    fn sweep_axes_have_expected_sizes() {
        assert_eq!(lengths_for(Scale::Quick).len(), 6);
        assert_eq!(lengths_for(Scale::Full).len(), 60);
        assert!(cells_for(Scale::Full).len() >= 50);
        let ls = lengths_for(Scale::Full);
        assert!((ls[0] - 10e-6).abs() < 1e-12);
        assert!((ls[59] - 5000e-6).abs() < 1e-9);
    }
}
