//! Figures 6 and 7: crosstalk-peak accuracy of the *nonlinear cell model*
//! (on the reduced engine) against transistor-level SPICE, for latch-input
//! victims of the DSP-like block with their real drivers — rising
//! (Figure 6) and falling (Figure 7) polarities.
//!
//! As in the paper, only victims whose reference peak exceeds 10 % of Vdd
//! enter the distribution, and the error bounds are additionally reported
//! for peaks above 20 % of Vdd (the cases that matter).

use super::stats::{ErrStats, Histogram};
use super::Scale;
use crate::fixtures::charlib_for;
use pcv_cells::library::CellLibrary;
use pcv_designs::dsp::{generate, DspConfig};
use pcv_designs::Technology;
use pcv_xtalk::drivers::DriverModelKind;
use pcv_xtalk::prune::{prune_victim, PruneConfig};
use pcv_xtalk::{analyze_glitch, AnalysisContext, AnalysisOptions, EngineKind};
use std::time::Duration;

/// One victim's evaluation for one polarity.
#[derive(Debug, Clone)]
pub struct Case {
    /// Victim net name.
    pub net: String,
    /// Transistor-level SPICE peak (volts, signed).
    pub reference: f64,
    /// Nonlinear-model MPVL peak (volts, signed).
    pub model: f64,
    /// SPICE wall time.
    pub spice_time: Duration,
    /// MPVL wall time.
    pub mpvl_time: Duration,
}

impl Case {
    /// Percentage error; negative means SPICE is more pessimistic (larger
    /// magnitude), matching the paper's convention for these figures.
    pub fn err_pct(&self) -> f64 {
        100.0 * (self.model.abs() - self.reference.abs()) / self.reference.abs().max(1e-9)
    }
}

/// Result for one polarity (Figure 6 = rising, Figure 7 = falling).
#[derive(Debug, Clone)]
pub struct Distribution {
    /// `true` for rising crosstalk.
    pub rising: bool,
    /// Cases with reference peak above 10 % of Vdd.
    pub cases: Vec<Case>,
    /// Supply voltage used.
    pub vdd: f64,
}

impl Distribution {
    /// Error statistics over all retained cases.
    pub fn stats(&self) -> ErrStats {
        ErrStats::of(&self.cases.iter().map(Case::err_pct).collect::<Vec<_>>())
    }

    /// Error statistics restricted to peaks above 20 % of Vdd.
    pub fn stats_above_20pct(&self) -> ErrStats {
        let errs: Vec<f64> = self
            .cases
            .iter()
            .filter(|c| c.reference.abs() > 0.2 * self.vdd)
            .map(Case::err_pct)
            .collect();
        ErrStats::of(&errs)
    }

    /// Aggregate speedup of the modeled flow over SPICE.
    pub fn speedup(&self) -> f64 {
        let s: f64 = self.cases.iter().map(|c| c.spice_time.as_secs_f64()).sum();
        let m: f64 = self.cases.iter().map(|c| c.mpvl_time.as_secs_f64()).sum();
        s / m.max(1e-12)
    }

    /// Paper-style text.
    pub fn to_text(&self) -> String {
        let title = if self.rising {
            "Figure 6: rising crosstalk peak error, nonlinear model vs transistor-level SPICE"
        } else {
            "Figure 7: falling crosstalk peak error, nonlinear model vs transistor-level SPICE"
        };
        let mut hist = Histogram::new(-30.0, 30.0, 12);
        for c in &self.cases {
            hist.add(c.err_pct());
        }
        let mut out = hist.to_text(title);
        let s = self.stats();
        out.push_str(&format!(
            "  cases >10% vdd: {}  avg err: {:.2}%  range: [{:.2}%, {:.2}%]\n",
            s.n, s.avg, s.min, s.max
        ));
        let s20 = self.stats_above_20pct();
        out.push_str(&format!(
            "  peaks >20% vdd: {} cases, error range [{:.2}%, {:.2}%]\n",
            s20.n, s20.min, s20.max
        ));
        out.push_str(&format!("  speedup over SPICE: {:.1}x\n", self.speedup()));
        out
    }
}

/// Number of latch-input victims audited (the paper used 101).
pub fn num_victims(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 16,
        Scale::Full => 101,
    }
}

/// Run both polarities.
///
/// # Panics
///
/// Panics on characterization or analysis failure (harness context).
pub fn run(scale: Scale) -> (Distribution, Distribution) {
    let tech = Technology::c025();
    let lib = CellLibrary::standard_025();
    let charlib = charlib_for(&[
        "INVX2", "INVX4", "INVX8", "BUFX4", "BUFX8", "BUFX12", "NAND2X2", "NAND2X4", "NOR2X2",
        "NOR2X4", "TBUFX4", "TBUFX8", "TBUFX16",
    ]);
    let block = generate(
        &DspConfig { n_buses: 5, bus_bits: 16, n_random_nets: 80, ..Default::default() },
        &tech,
        &lib,
    );
    let victims = block.latch_victims();
    let wanted = num_victims(scale).min(victims.len());
    let opts = AnalysisOptions::default();
    let vdd = opts.vdd;

    let mut rise_cases = Vec::new();
    let mut fall_cases = Vec::new();
    for &victim in victims.iter().take(wanted) {
        let pnet =
            block.parasitics.find_net(block.design.net_name(victim)).expect("views are aligned");
        let cluster = prune_victim(&block.parasitics, pnet, &PruneConfig::default());
        if cluster.aggressors.is_empty() {
            continue;
        }
        let model_ctx = AnalysisContext::with_design(
            &block.parasitics,
            &block.design,
            &lib,
            &charlib,
            DriverModelKind::Nonlinear,
        );
        let ref_ctx = AnalysisContext::with_design(
            &block.parasitics,
            &block.design,
            &lib,
            &charlib,
            DriverModelKind::TransistorLevel,
        );
        let spice_opts =
            AnalysisOptions { engine: EngineKind::Spice, ..AnalysisOptions::default() };
        for rising in [true, false] {
            let reference = match analyze_glitch(&ref_ctx, &cluster, rising, &spice_opts) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("fig6_7: skipping victim (reference failed): {e}");
                    continue;
                }
            };
            if reference.peak.abs() < 0.1 * vdd {
                continue;
            }
            let model = match analyze_glitch(&model_ctx, &cluster, rising, &opts) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("fig6_7: skipping victim (model failed): {e}");
                    continue;
                }
            };
            let case = Case {
                net: block.parasitics.net(pnet).name().to_owned(),
                reference: reference.peak,
                model: model.peak,
                spice_time: reference.elapsed,
                mpvl_time: model.elapsed,
            };
            if rising {
                rise_cases.push(case);
            } else {
                fall_cases.push(case);
            }
        }
    }
    (
        Distribution { rising: true, cases: rise_cases, vdd },
        Distribution { rising: false, cases: fall_cases, vdd },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_stats() {
        let mk = |reference: f64, model: f64| Case {
            net: "n".into(),
            reference,
            model,
            spice_time: Duration::from_millis(250),
            mpvl_time: Duration::from_millis(10),
        };
        let d = Distribution {
            rising: true,
            cases: vec![mk(0.3, 0.32), mk(0.6, 0.57), mk(1.2, 1.25)],
            vdd: 2.5,
        };
        let s = d.stats();
        assert_eq!(s.n, 3);
        let s20 = d.stats_above_20pct();
        assert_eq!(s20.n, 2); // 0.6 and 1.2 exceed 0.5 V
        assert!((d.speedup() - 25.0).abs() < 1.0);
        assert!(d.to_text().contains("Figure 6"));
        let d7 = Distribution { rising: false, cases: vec![], vdd: 2.5 };
        assert!(d7.to_text().contains("Figure 7"));
    }
}
