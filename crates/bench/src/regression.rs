//! The statistical benchmark-regression gate: stable-schema benchmark
//! reports (`BENCH_signoff.json`), median/MAD summaries, and a noise-aware
//! pass/fail comparison against a checked-in baseline.
//!
//! The gate is deliberately conservative about noise: a run only counts as
//! regressed when its median exceeds the baseline median by **both** the
//! relative threshold (default 15%) *and* the combined noise band
//! ([`NOISE_MADS`] × the two runs' MADs). A jittery machine widens its own
//! band instead of flapping the gate; a real slowdown clears both bars.

use pcv_obs::json::{self, Value};
use pcv_trace::json::{f64_lit, str_lit};
use std::path::Path;

/// Schema version stamped into every benchmark report.
pub const SCHEMA: u64 = 1;

/// Default relative regression threshold: 15% over the baseline median.
pub const DEFAULT_THRESHOLD: f64 = 0.15;

/// Width of the noise band in combined MADs (baseline + current).
pub const NOISE_MADS: f64 = 3.0;

/// One benchmark run: raw samples plus the robust summary statistics the
/// gate compares. Serializes to a stable JSON schema.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Benchmark case name (stable identifier, e.g. `"signoff_bundle16"`).
    pub bench: String,
    /// Untimed warmup iterations that preceded the samples.
    pub warmup: usize,
    /// Per-iteration wall times, milliseconds, in run order.
    pub samples_ms: Vec<f64>,
    /// Median of the samples.
    pub median_ms: f64,
    /// Median absolute deviation of the samples — the robust noise scale.
    pub mad_ms: f64,
    /// Fastest sample.
    pub min_ms: f64,
    /// Slowest sample.
    pub max_ms: f64,
    /// Peak live heap bytes over the run (0 when the instrumented
    /// allocator is not installed).
    pub peak_alloc_bytes: u64,
}

/// Median of a non-empty, unsorted slice (averages the middle pair for
/// even lengths).
pub fn median(samples: &[f64]) -> f64 {
    assert!(!samples.is_empty(), "median of no samples");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

/// Median absolute deviation around the median.
pub fn mad(samples: &[f64]) -> f64 {
    let m = median(samples);
    let deviations: Vec<f64> = samples.iter().map(|s| (s - m).abs()).collect();
    median(&deviations)
}

/// Summarize raw samples into a [`BenchReport`].
///
/// # Panics
///
/// Panics when `samples_ms` is empty.
pub fn summarize(
    bench: impl Into<String>,
    warmup: usize,
    samples_ms: Vec<f64>,
    peak_alloc_bytes: u64,
) -> BenchReport {
    let median_ms = median(&samples_ms);
    let mad_ms = mad(&samples_ms);
    let min_ms = samples_ms.iter().copied().fold(f64::INFINITY, f64::min);
    let max_ms = samples_ms.iter().copied().fold(0.0f64, f64::max);
    BenchReport {
        bench: bench.into(),
        warmup,
        samples_ms,
        median_ms,
        mad_ms,
        min_ms,
        max_ms,
        peak_alloc_bytes,
    }
}

impl BenchReport {
    /// Render the stable-schema JSON document (`BENCH_signoff.json`).
    pub fn to_json(&self) -> String {
        let samples: Vec<String> = self.samples_ms.iter().map(|&s| f64_lit(s)).collect();
        format!(
            "{{\"schema\":{SCHEMA},\"bench\":{},\"warmup\":{},\"iterations\":{},\
             \"median_ms\":{},\"mad_ms\":{},\"min_ms\":{},\"max_ms\":{},\
             \"peak_alloc_bytes\":{},\"samples_ms\":[{}]}}",
            str_lit(&self.bench),
            self.warmup,
            self.samples_ms.len(),
            f64_lit(self.median_ms),
            f64_lit(self.mad_ms),
            f64_lit(self.min_ms),
            f64_lit(self.max_ms),
            self.peak_alloc_bytes,
            samples.join(",")
        )
    }

    /// Parse a report back from its JSON form. `None` for malformed
    /// documents or unknown schema versions.
    pub fn parse(text: &str) -> Option<BenchReport> {
        let v = json::parse(text.trim()).ok()?;
        if v.get("schema")?.as_u64()? != SCHEMA {
            return None;
        }
        let num = |key: &str| v.get(key).and_then(Value::as_f64);
        let samples_ms: Vec<f64> =
            v.get("samples_ms")?.as_arr()?.iter().map(Value::as_f64).collect::<Option<_>>()?;
        if samples_ms.is_empty() {
            return None;
        }
        Some(BenchReport {
            bench: v.get("bench")?.as_str()?.to_owned(),
            warmup: v.get("warmup")?.as_u64()? as usize,
            samples_ms,
            median_ms: num("median_ms")?,
            mad_ms: num("mad_ms")?,
            min_ms: num("min_ms")?,
            max_ms: num("max_ms")?,
            peak_alloc_bytes: v.get("peak_alloc_bytes")?.as_u64()?,
        })
    }

    /// Write the report to `path` atomically (write-temp + fsync +
    /// rename), so a crash mid-write can never tear a baseline that the
    /// regression gate would later misread.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        pcv_engine::fs::Fs::real().write_atomic(path, self.to_json().as_bytes())
    }

    /// Read and parse a report from `path`.
    pub fn read(path: &Path) -> Option<BenchReport> {
        BenchReport::parse(&std::fs::read_to_string(path).ok()?)
    }
}

/// The gate's decision for one baseline/current pair.
#[derive(Debug, Clone, PartialEq)]
pub struct GateVerdict {
    /// `true` when the current run is a regression.
    pub regressed: bool,
    /// current median / baseline median.
    pub ratio: f64,
    /// The limit the current median was held to: the *larger* of the
    /// relative threshold and the noise band.
    pub limit_ms: f64,
    /// One-line human-readable explanation.
    pub detail: String,
}

/// Compare `current` against `baseline` with relative threshold
/// `threshold` (e.g. `0.15` for 15%). Regressed iff the current median
/// exceeds both `baseline × (1 + threshold)` and the noise band
/// `baseline + NOISE_MADS × (mad_baseline + mad_current)`.
pub fn gate(baseline: &BenchReport, current: &BenchReport, threshold: f64) -> GateVerdict {
    let threshold_limit = baseline.median_ms * (1.0 + threshold);
    let noise_limit = baseline.median_ms + NOISE_MADS * (baseline.mad_ms + current.mad_ms);
    let limit_ms = threshold_limit.max(noise_limit);
    let regressed = current.median_ms > limit_ms;
    let ratio =
        if baseline.median_ms > 0.0 { current.median_ms / baseline.median_ms } else { f64::NAN };
    let detail = format!(
        "{}: median {:.3} ms vs baseline {:.3} ms ({:.2}x, limit {:.3} ms) — {}",
        current.bench,
        current.median_ms,
        baseline.median_ms,
        ratio,
        limit_ms,
        if regressed { "REGRESSED" } else { "ok" }
    );
    GateVerdict { regressed, ratio, limit_ms, detail }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(samples: &[f64]) -> BenchReport {
        summarize("signoff_bundle16", 2, samples.to_vec(), 1 << 20)
    }

    #[test]
    fn median_and_mad_are_robust() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        // One wild outlier barely moves the robust statistics.
        let m = mad(&[10.0, 10.5, 9.5, 10.0, 100.0]);
        assert!(m <= 0.5, "MAD must shrug off the outlier, got {m}");
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = report(&[12.0, 11.5, 12.5, 11.8, 12.2]);
        let parsed = BenchReport::parse(&r.to_json()).expect("well-formed");
        assert_eq!(parsed, r);
        assert_eq!(BenchReport::parse("not json"), None);
        assert_eq!(BenchReport::parse("{\"schema\":99}"), None);
    }

    #[test]
    fn identical_runs_pass_the_gate() {
        let base = report(&[10.0, 10.2, 9.8, 10.1, 9.9]);
        let v = gate(&base, &base.clone(), DEFAULT_THRESHOLD);
        assert!(!v.regressed, "{}", v.detail);
        assert!((v.ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn a_synthetic_2x_slowdown_fails_the_gate() {
        // The acceptance drill: double every sample and the gate must trip.
        let base = report(&[10.0, 10.2, 9.8, 10.1, 9.9]);
        let slow = report(&[20.0, 20.4, 19.6, 20.2, 19.8]);
        let v = gate(&base, &slow, DEFAULT_THRESHOLD);
        assert!(v.regressed, "a 2x slowdown must regress: {}", v.detail);
        assert!((v.ratio - 2.0).abs() < 0.05);
        assert!(v.detail.contains("REGRESSED"));
    }

    #[test]
    fn noisy_runs_widen_their_own_band() {
        // A 20% median bump that sits inside the combined noise band must
        // NOT regress: the MADs are huge relative to the shift.
        let base = report(&[10.0, 13.0, 7.0, 11.0, 9.0]); // mad = 2.0
        let wobbly = report(&[12.0, 15.0, 9.0, 13.0, 11.0]); // mad = 2.0, median 12
        let v = gate(&base, &wobbly, DEFAULT_THRESHOLD);
        assert!(!v.regressed, "inside the noise band: {}", v.detail);
        // The same shift with tight samples IS a regression.
        let tight_base = report(&[10.0, 10.01, 9.99, 10.0, 10.0]);
        let tight_slow = report(&[12.0, 12.01, 11.99, 12.0, 12.0]);
        let v = gate(&tight_base, &tight_slow, DEFAULT_THRESHOLD);
        assert!(v.regressed, "tight 20% shift must regress: {}", v.detail);
    }

    #[test]
    fn gate_files_round_trip_on_disk() {
        let dir = std::env::temp_dir().join("pcv-bench-gate-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_signoff.json");
        let r = report(&[5.0, 5.5, 4.5]);
        r.write(&path).unwrap();
        assert_eq!(BenchReport::read(&path), Some(r));
        let _ = std::fs::remove_file(&path);
    }
}
