//! Shared fixtures: partial characterized libraries and structure/driver
//! bindings used by several experiments.

use pcv_cells::charlib::{characterize, CharLibrary};
use pcv_cells::library::CellLibrary;
use pcv_designs::structures::sandwich;
use pcv_designs::Technology;
use pcv_netlist::{Design, ParasiticDb};
use pcv_xtalk::drivers::DriverModelKind;
use pcv_xtalk::AnalysisContext;

/// Characterize only the named cells — a fast fixture for tests and
/// examples that do not need the whole 53-cell library.
///
/// Results are cached as Liberty-lite files under
/// `target/pcv_charlib_cache/` (characterization is the paper's "one-time
/// task"; re-runs load from disk).
///
/// # Panics
///
/// Panics on unknown cell names or characterization failure (fixture
/// context: failures are programming errors).
pub fn charlib_for(names: &[&str]) -> CharLibrary {
    let lib = CellLibrary::standard_025();
    let cache_dir =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/pcv_charlib_cache");
    let _ = std::fs::create_dir_all(&cache_dir);
    let mut out = CharLibrary::default();
    for &n in names {
        let cell = lib.cell(n).unwrap_or_else(|| panic!("unknown cell {n}"));
        let cache = cache_dir.join(format!("{n}.lib"));
        if let Ok(text) = std::fs::read_to_string(&cache) {
            if let Ok(cached) = pcv_cells::liberty::parse_liberty(&text) {
                if let Some(ch) = cached.cell(n) {
                    out.insert(ch.clone());
                    continue;
                }
            }
        }
        let ch = characterize(cell).expect("fixture characterization succeeds");
        let mut single = CharLibrary::default();
        single.insert(ch.clone());
        let _ = std::fs::write(&cache, pcv_cells::liberty::write_liberty(&single));
        out.insert(ch);
    }
    out
}

/// A Figure 1 structure bound to drivers: victim `v` driven by
/// `victim_cell`, aggressors `a1`/`a2` by `agg_cell`, with a latch load on
/// the victim.
#[derive(Debug)]
pub struct StructureFixture {
    /// Extracted parasitics of the three wires.
    pub db: ParasiticDb,
    /// Matching gate-level view.
    pub design: Design,
}

/// Build the Figure 1 sandwich plus a design view wiring the given driver
/// cells.
pub fn structure_fixture(
    length: f64,
    tech: &Technology,
    victim_cell: &str,
    agg_cell: &str,
) -> StructureFixture {
    let db = sandwich(length, tech);
    let mut design = Design::new("fig1");
    let pi = "pi0";
    // Net order in the sandwich db: a1, v, a2.
    let mut net_of = std::collections::BTreeMap::new();
    for (_, pnet) in db.iter() {
        net_of.insert(pnet.name().to_owned(), design.add_net(pnet.name()));
    }
    let pi_net = design.add_net(pi);
    for (name, cell) in [("a1", agg_cell), ("v", victim_cell), ("a2", agg_cell)] {
        let net = net_of[name];
        design.add_instance(format!("{name}_drv"), cell, vec![pi_net], Some(net), false);
    }
    design.add_instance("v_lat", "LATCH", vec![net_of["v"]], None, false);
    design.mark_latch_input(net_of["v"]);
    StructureFixture { db, design }
}

/// Borrow an [`AnalysisContext`] over a structure fixture.
pub fn structure_context<'a>(
    fx: &'a StructureFixture,
    lib: &'a CellLibrary,
    charlib: &'a CharLibrary,
    model: DriverModelKind,
) -> AnalysisContext<'a> {
    AnalysisContext::with_design(&fx.db, &fx.design, lib, charlib, model)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_fixture_wires_drivers() {
        let fx = structure_fixture(200e-6, &Technology::c025(), "INVX2", "BUFX8");
        let v = fx.design.find_net("v").unwrap();
        assert_eq!(fx.design.drivers_of(v).len(), 1);
        assert!(fx.design.is_latch_input(v));
        assert_eq!(fx.db.num_nets(), 3);
    }
}
