//! Experiment harness: the code that regenerates every table and figure of
//! the paper's evaluation, plus shared fixtures for examples, integration
//! tests and criterion benches.
//!
//! Run the binaries to print paper-style rows (release mode strongly
//! recommended):
//!
//! ```text
//! cargo run --release -p pcv-bench --bin table1
//! cargo run --release -p pcv-bench --bin table2
//! cargo run --release -p pcv-bench --bin table3        # add --full for paper scale
//! cargo run --release -p pcv-bench --bin table4        # add --full for paper scale
//! cargo run --release -p pcv-bench --bin fig3
//! cargo run --release -p pcv-bench --bin fig4_5
//! cargo run --release -p pcv-bench --bin fig6_7       # add --full for 101 victims
//! cargo run --release -p pcv-bench --bin pruning_stats
//! ```
//!
//! Wall-clock benches (`cargo bench -p pcv-bench`, plain `std::time`
//! harnesses — see [`timing`]) measure the engine speedups and the
//! design-choice ablations called out in `DESIGN.md`.

#![deny(missing_docs)]

pub mod experiments;
pub mod fixtures;
pub mod regression;
pub mod timing;

pub use fixtures::{charlib_for, structure_context, StructureFixture};
