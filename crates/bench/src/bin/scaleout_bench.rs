//! `scaleout_bench`: the CI gate over multi-process sharded sign-off.
//!
//! The workload is the [`DspConfig::scaleout`] tier — ten 32-bit buses
//! plus 320 random nets, ~400 latch victims — sized so verification
//! dominates elaboration by three orders of magnitude and process-level
//! fan-out (each worker re-elaborates the chip, then verifies only its
//! slice) has real work to parallelize.
//!
//! Every run pins **one engine thread per process**: the baseline is a
//! single in-process engine with `workers: 1`, the sharded runs use
//! `workers_per_shard: 1` — so the measured axis is process scale-out
//! alone, not thread-level parallelism the engine already has. Each
//! repetition starts from a wiped data directory: no shard journal, no
//! result cache, fully cold.
//!
//! The report gates three ways under `--check`:
//!
//! 1. byte-identity — every sharded sign-off must equal the unsharded
//!    baseline document exactly (always enforced, even without `--check`);
//! 2. hard speedup floors, [`MIN_SPEEDUP_2`]× at 2 workers and
//!    [`MIN_SPEEDUP_4`]× at 4 — enforced only when the machine actually
//!    has that many cores ([`std::thread::available_parallelism`]), since
//!    wall-clock fan-out on fewer cores is physics, not a regression;
//! 3. the noise-aware regression gate in [`pcv_bench::regression`] over
//!    the 4-shard median against the checked-in `BENCH_scaleout.json`.
//!
//! ```text
//! cargo build --release -p pcv-serve                                # worker exe
//! cargo run --release -p pcv-bench --bin scaleout_bench             # measure
//! cargo run --release -p pcv-bench --bin scaleout_bench -- --check  # gate
//! cargo run --release -p pcv-bench --bin scaleout_bench -- --bless  # new baseline
//! ```

use pcv_bench::regression::{self, BenchReport, DEFAULT_THRESHOLD};
use pcv_designs::dsp::DspConfig;
use pcv_engine::{Engine, EngineConfig};
use pcv_obs::{mem, TrackingAlloc};
use pcv_serve::session::elaborate;
use pcv_serve::{Coordinator, CoordinatorConfig, DesignSpec};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

#[global_allocator]
static ALLOC: TrackingAlloc = TrackingAlloc::system();

const BENCH_NAME: &str = "scaleout_shards4_dsp640";
/// Speedup floor for 2 worker processes vs. the 1-thread baseline.
const MIN_SPEEDUP_2: f64 = 1.6;
/// Speedup floor for 4 worker processes vs. the 1-thread baseline.
const MIN_SPEEDUP_4: f64 = 2.5;
/// The shard counts measured, in report order.
const SHARD_COUNTS: [usize; 3] = [2, 4, 8];

fn baseline_default() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("baselines/BENCH_scaleout.json")
}

/// The `pcv_serve` binary is a sibling of this bench in the same cargo
/// target directory — CI builds `-p pcv-serve --release` first.
fn worker_exe_default() -> PathBuf {
    std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.join("pcv_serve")))
        .unwrap_or_else(|| PathBuf::from("pcv_serve"))
}

struct Args {
    iters: usize,
    out: PathBuf,
    baseline: PathBuf,
    threshold: f64,
    serve_exe: PathBuf,
    check: bool,
    bless: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        iters: 3,
        out: PathBuf::from("BENCH_scaleout.json"),
        baseline: baseline_default(),
        threshold: DEFAULT_THRESHOLD,
        serve_exe: worker_exe_default(),
        check: false,
        bless: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--iters" => args.iters = value("--iters")?.parse().map_err(|e| format!("{e}"))?,
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--baseline" => args.baseline = PathBuf::from(value("--baseline")?),
            "--threshold" => {
                args.threshold = value("--threshold")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--serve-exe" => args.serve_exe = PathBuf::from(value("--serve-exe")?),
            "--check" => args.check = true,
            "--bless" => args.bless = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.iters == 0 {
        return Err("--iters must be at least 1".to_owned());
    }
    Ok(args)
}

fn median_of(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    regression::median(&samples)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("scaleout_bench: {e}");
            return ExitCode::from(2);
        }
    };
    if !args.serve_exe.is_file() {
        eprintln!(
            "scaleout_bench: worker binary {} not found (build with \
             `cargo build --release -p pcv-serve` or pass --serve-exe)",
            args.serve_exe.display()
        );
        return ExitCode::from(2);
    }

    let spec = DesignSpec::Dsp { config: DspConfig::scaleout() };
    let chip = Arc::new(elaborate(&spec).expect("scaleout tier elaborates"));
    let total = chip.victims().len();
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    eprintln!(
        "scaleout_bench: {total} victims, {cores} cores, worker {}",
        args.serve_exe.display()
    );

    let dir = std::env::temp_dir().join(format!("pcv-scaleout-bench-{}", std::process::id()));
    let wipe = || {
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("bench data dir");
    };

    // The denominator: one process, one engine thread, whole chip, cold.
    wipe();
    let t0 = Instant::now();
    let base_report = Engine::new(EngineConfig {
        workers: 1,
        cache_path: Some(dir.join("base.cache")),
        ..EngineConfig::default()
    })
    .verify_resident(&chip, None)
    .expect("baseline sign-off verifies");
    let base_ms = t0.elapsed().as_secs_f64() * 1e3;
    let base_doc = base_report.signoff_json();
    assert_eq!(base_report.chip.verdicts.len(), total, "bench workload must stay intact");

    // The sharded runs: cold every repetition, byte-checked every time.
    let run_sharded = |shards: usize| -> f64 {
        wipe();
        let mut cfg =
            CoordinatorConfig::new(shards, args.serve_exe.clone(), dir.join("merged.cache"));
        cfg.workers_per_shard = 1;
        let t0 = Instant::now();
        let outcome =
            Coordinator::new(spec.clone(), Arc::clone(&chip), cfg).run(None).unwrap_or_else(|e| {
                panic!("sharded run ({shards} shards) failed: {e:?}");
            });
        let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            outcome.report.signoff_json(),
            base_doc,
            "sharded sign-off ({shards} shards) must be byte-identical to the baseline"
        );
        assert_eq!(outcome.degraded_shards(), 0, "no shard may degrade in the bench");
        elapsed_ms
    };

    mem::reset_peak();
    let mut medians_ms = Vec::with_capacity(SHARD_COUNTS.len());
    let mut samples_4 = Vec::new();
    for &shards in &SHARD_COUNTS {
        let mut samples = Vec::with_capacity(args.iters);
        for _ in 0..args.iters {
            samples.push(run_sharded(shards));
        }
        if shards == 4 {
            samples_4 = samples.clone();
        }
        medians_ms.push(median_of(samples));
    }
    let peak = mem::snapshot().map_or(0, |s| s.peak_bytes);
    let _ = std::fs::remove_dir_all(&dir);

    let report = regression::summarize(BENCH_NAME, 0, samples_4, peak);
    eprint!("scaleout_bench: baseline {base_ms:.0} ms");
    for (i, &shards) in SHARD_COUNTS.iter().enumerate() {
        eprint!(", {shards} workers {:.0} ms ({:.2}x)", medians_ms[i], base_ms / medians_ms[i]);
    }
    eprintln!();
    if let Err(e) = report.write(&args.out) {
        eprintln!("scaleout_bench: cannot write {}: {e}", args.out.display());
        return ExitCode::from(2);
    }
    println!("{}", report.to_json());

    if args.bless {
        if let Some(dir) = args.baseline.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = report.write(&args.baseline) {
            eprintln!("scaleout_bench: cannot bless {}: {e}", args.baseline.display());
            return ExitCode::from(2);
        }
        eprintln!("scaleout_bench: blessed new baseline at {}", args.baseline.display());
        return ExitCode::SUCCESS;
    }

    if args.check {
        // Speedup floors only bind where the cores exist to deliver them.
        let floors = [(2usize, MIN_SPEEDUP_2), (4usize, MIN_SPEEDUP_4)];
        for (shards, floor) in floors {
            let idx = SHARD_COUNTS.iter().position(|&s| s == shards).expect("measured count");
            let speedup = base_ms / medians_ms[idx];
            if cores < shards {
                eprintln!(
                    "scaleout_bench: skipping {shards}-worker floor ({cores} cores available)"
                );
            } else if speedup < floor {
                eprintln!(
                    "scaleout_bench: FAIL — {shards} workers gave only {speedup:.2}x \
                     (floor {floor}x)"
                );
                return ExitCode::FAILURE;
            }
        }
        let Some(baseline) = BenchReport::read(&args.baseline) else {
            eprintln!(
                "scaleout_bench: no readable baseline at {} (seed one with --bless)",
                args.baseline.display()
            );
            return ExitCode::from(2);
        };
        let verdict = regression::gate(&baseline, &report, args.threshold);
        eprintln!("scaleout_bench: {}", verdict.detail);
        if verdict.regressed {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
