//! Regenerate Figure 3: MPVL vs SPICE crosstalk-peak error distribution.
//! Pass `--full` for the paper's 113 networks.

use pcv_bench::experiments::{fig3, Scale};

fn main() {
    let result = fig3::run(Scale::from_args());
    print!("{}", result.to_text());
}
