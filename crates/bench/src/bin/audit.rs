//! `audit` — run the chip-level crosstalk audit on a SPEF-lite file.
//!
//! ```text
//! audit <parasitics.spef> [--drive <ohms>] [--warn <frac>] [--fail <frac>]
//!       [--ratio <cap_ratio>] [--csv]
//! ```
//!
//! Every net is audited as a victim with uniform fixed-resistance drivers
//! (the design-less flow); use the library API for cell-based models.

use pcv_netlist::spef::parse_spef;
use pcv_netlist::PNetId;
use pcv_xtalk::prune::PruneConfig;
use pcv_xtalk::{verify_chip, AnalysisContext, AnalysisOptions};
use std::process::ExitCode;

fn parse_flag(args: &[String], name: &str, default: f64) -> Result<f64, String> {
    for k in 0..args.len() {
        if args[k] == name {
            return args
                .get(k + 1)
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| format!("{name} needs a numeric value"));
        }
    }
    Ok(default)
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let path = args
        .iter()
        .find(|a| !a.starts_with("--") && a.parse::<f64>().is_err())
        .ok_or("usage: audit <parasitics.spef> [--drive ohms] [--warn frac] [--fail frac] [--ratio r] [--csv]")?;
    let drive = parse_flag(&args, "--drive", 1000.0)?;
    let warn = parse_flag(&args, "--warn", 0.10)?;
    let fail = parse_flag(&args, "--fail", 0.20)?;
    let ratio = parse_flag(&args, "--ratio", 0.02)?;
    let csv = args.iter().any(|a| a == "--csv");

    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let db = parse_spef(&text).map_err(|e| e.to_string())?;
    eprintln!("loaded {}: {} nets, {} coupling caps", path, db.num_nets(), db.couplings().len());

    let victims: Vec<PNetId> = (0..db.num_nets()).map(PNetId).collect();
    let ctx = AnalysisContext::fixed_resistance(&db, drive);
    let prune = PruneConfig { cap_ratio: ratio, max_aggressors: 12 };
    let report = verify_chip(&ctx, &victims, &prune, &AnalysisOptions::default(), warn, fail)
        .map_err(|e| e.to_string())?;
    if csv {
        print!("{}", report.to_csv());
    } else {
        print!("{}", report.to_text());
    }
    if report.num_violations() > 0 {
        Err(format!("{} violations", report.num_violations()))
    } else {
        Ok(())
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("audit: {e}");
            ExitCode::FAILURE
        }
    }
}
