//! `signoff_bench`: the CI benchmark-regression gate over the parallel
//! sign-off flow.
//!
//! Runs warmup + N timed repetitions of a full [`pcv_engine::Engine`]
//! verify over the deterministic 16-wire bundle fixture (cold cache every
//! repetition), summarizes with median/MAD, and writes the stable-schema
//! `BENCH_signoff.json`. With `--check`, compares against the checked-in
//! baseline using the noise-aware gate in [`pcv_bench::regression`] and
//! exits nonzero on regression.
//!
//! ```text
//! cargo run --release -p pcv-bench --bin signoff_bench              # measure
//! cargo run --release -p pcv-bench --bin signoff_bench -- --check  # gate
//! cargo run --release -p pcv-bench --bin signoff_bench -- --bless  # new baseline
//! ```

use pcv_bench::regression::{self, BenchReport, DEFAULT_THRESHOLD};
use pcv_designs::structures::bundle;
use pcv_designs::Technology;
use pcv_engine::{Engine, EngineConfig};
use pcv_netlist::PNetId;
use pcv_obs::{mem, TrackingAlloc};
use pcv_xtalk::AnalysisContext;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

// The binary installs the instrumented allocator so the report's
// peak_alloc_bytes reflects the real workload footprint.
#[global_allocator]
static ALLOC: TrackingAlloc = TrackingAlloc::system();

const BENCH_NAME: &str = "signoff_bundle16";

fn baseline_default() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("baselines/BENCH_signoff.json")
}

struct Args {
    iters: usize,
    warmup: usize,
    out: PathBuf,
    baseline: PathBuf,
    threshold: f64,
    check: bool,
    bless: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        iters: 9,
        warmup: 2,
        out: PathBuf::from("BENCH_signoff.json"),
        baseline: baseline_default(),
        threshold: DEFAULT_THRESHOLD,
        check: false,
        bless: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--iters" => args.iters = value("--iters")?.parse().map_err(|e| format!("{e}"))?,
            "--warmup" => args.warmup = value("--warmup")?.parse().map_err(|e| format!("{e}"))?,
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--baseline" => args.baseline = PathBuf::from(value("--baseline")?),
            "--threshold" => {
                args.threshold = value("--threshold")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--check" => args.check = true,
            "--bless" => args.bless = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.iters == 0 {
        return Err("--iters must be at least 1".to_owned());
    }
    Ok(args)
}

/// One timed repetition: a cold-cache engine verify over the bundle.
fn run_once(ctx: &AnalysisContext<'_>, victims: &[PNetId]) -> f64 {
    let engine = Engine::new(EngineConfig { workers: 0, ..Default::default() });
    let t0 = Instant::now();
    let report = engine.verify(ctx, victims).expect("bench workload verifies");
    let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(report.chip.verdicts.len(), victims.len(), "bench workload must stay intact");
    elapsed_ms
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("signoff_bench: {e}");
            return ExitCode::from(2);
        }
    };

    let db = bundle(16, 2000e-6, &Technology::c025());
    let victims: Vec<PNetId> = (0..db.num_nets()).map(PNetId).collect();
    let ctx = AnalysisContext::fixed_resistance(&db, 1000.0);

    for _ in 0..args.warmup {
        run_once(&ctx, &victims);
    }
    mem::reset_peak();
    let mut samples_ms = Vec::with_capacity(args.iters);
    for _ in 0..args.iters {
        samples_ms.push(run_once(&ctx, &victims));
    }
    let peak = mem::snapshot().map_or(0, |s| s.peak_bytes);

    let report = regression::summarize(BENCH_NAME, args.warmup, samples_ms, peak);
    eprintln!(
        "signoff_bench: {} — median {:.3} ms, mad {:.3} ms, min {:.3} ms, peak heap {:.2} MiB",
        report.bench,
        report.median_ms,
        report.mad_ms,
        report.min_ms,
        report.peak_alloc_bytes as f64 / (1024.0 * 1024.0)
    );
    if let Err(e) = report.write(&args.out) {
        eprintln!("signoff_bench: cannot write {}: {e}", args.out.display());
        return ExitCode::from(2);
    }
    println!("{}", report.to_json());

    if args.bless {
        if let Some(dir) = args.baseline.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = report.write(&args.baseline) {
            eprintln!("signoff_bench: cannot bless {}: {e}", args.baseline.display());
            return ExitCode::from(2);
        }
        eprintln!("signoff_bench: blessed new baseline at {}", args.baseline.display());
        return ExitCode::SUCCESS;
    }

    if args.check {
        let Some(baseline) = BenchReport::read(&args.baseline) else {
            eprintln!(
                "signoff_bench: no readable baseline at {} (seed one with --bless)",
                args.baseline.display()
            );
            return ExitCode::from(2);
        };
        let verdict = regression::gate(&baseline, &report, args.threshold);
        eprintln!("signoff_bench: {}", verdict.detail);
        if verdict.regressed {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
