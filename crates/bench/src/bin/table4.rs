//! Regenerate Table 4: nonlinear cell model vs SPICE.
//! Pass `--full` for the paper-scale sweep.

use pcv_bench::experiments::{table34, Scale};
use pcv_xtalk::drivers::DriverModelKind;

fn main() {
    let scale = Scale::from_args();
    let study = table34::run(DriverModelKind::Nonlinear, scale);
    print!("{}", study.to_text("Table 4: nonlinear cell model vs SPICE"));
}
