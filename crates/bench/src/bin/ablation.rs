//! Regenerate the DESIGN.md ablation studies: Krylov order accuracy,
//! Lanczos vs Arnoldi, and LU fill by ordering.

use pcv_bench::experiments::ablation;

fn main() {
    let rows = ablation::order_sweep();
    let fill = ablation::ordering_fill();
    print!("{}", ablation::to_text(&rows, fill));
}
