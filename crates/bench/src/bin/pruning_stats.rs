//! Regenerate the Section 3 pruning statistics and threshold ablation.

use pcv_bench::experiments::pruning;

fn main() {
    let points = pruning::run();
    print!("{}", pruning::to_text(&points));
}
