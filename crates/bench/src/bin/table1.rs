//! Regenerate Table 1: coupled wire length vs peak glitch.

fn main() {
    let rows = pcv_bench::experiments::table1::run();
    print!("{}", pcv_bench::experiments::table1::to_text(&rows));
}
