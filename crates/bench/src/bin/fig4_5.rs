//! Regenerate Figures 4/5: waveform overlay of the worst Figure 3 case,
//! emitted as CSV on stdout.

use pcv_bench::experiments::{fig45, Scale};

fn main() {
    let overlay = fig45::run_standalone(Scale::from_args());
    eprintln!(
        "worst case index {}: peak difference {:.4} V",
        overlay.case_index,
        overlay.peak_difference()
    );
    print!("{}", overlay.to_csv(200));
}
