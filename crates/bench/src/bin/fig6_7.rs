//! Regenerate Figures 6/7: nonlinear-cell-model accuracy on DSP latch-input
//! victims vs transistor-level SPICE. Pass `--full` for 101 victims.

use pcv_bench::experiments::{fig67, Scale};

fn main() {
    let (rise, fall) = fig67::run(Scale::from_args());
    print!("{}", rise.to_text());
    print!("{}", fall.to_text());
}
