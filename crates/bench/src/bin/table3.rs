//! Regenerate Table 3: timing-library (linear) driver model vs SPICE.
//! Pass `--full` for the paper-scale sweep (50+ cells x 60 lengths).

use pcv_bench::experiments::{table34, Scale};
use pcv_xtalk::drivers::DriverModelKind;

fn main() {
    let scale = Scale::from_args();
    let study = table34::run(DriverModelKind::TimingLibrary, scale);
    print!("{}", study.to_text("Table 3: timing-library (linear resistor) driver model vs SPICE"));
}
