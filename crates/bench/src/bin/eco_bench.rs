//! `eco_bench`: the CI benchmark-regression gate over incremental ECO
//! re-verification.
//!
//! The workload is a 2048-net tiled wire field (512 independent 4-wire
//! tiles, six empty tracks apart so the extractor's coupling cutoff keeps
//! tiles decoupled). One cold sign-off over the whole chip seeds the
//! session cache and provides the denominator; each timed repetition then
//! applies a <0.1% ECO — one ground-cap edit on one net — and re-verifies
//! through [`Engine::eco_verify_resident`], which re-analyzes only the
//! dirty clusters and splices the other ~2044 verdicts from the warm
//! cache. Repetitions alternate between two edit variants so every
//! iteration pays real dirty-cluster work instead of a pure cache hit.
//!
//! The report gates two ways under `--check`:
//!
//! 1. the noise-aware regression gate in [`pcv_bench::regression`] over
//!    the ECO median against the checked-in `BENCH_eco.json` baseline;
//! 2. a hard floor: the cold/ECO speedup must be at least
//!    [`MIN_SPEEDUP`]× — the headline incremental-re-verification claim.
//!
//! ```text
//! cargo run --release -p pcv-bench --bin eco_bench              # measure
//! cargo run --release -p pcv-bench --bin eco_bench -- --check  # gate
//! cargo run --release -p pcv-bench --bin eco_bench -- --bless  # new baseline
//! ```

use pcv_bench::regression::{self, BenchReport, DEFAULT_THRESHOLD};
use pcv_designs::extract::{extract, WireGeom};
use pcv_designs::Technology;
use pcv_engine::{Engine, EngineConfig, ResidentChip};
use pcv_netlist::{PNetId, ParasiticDb};
use pcv_obs::{mem, TrackingAlloc};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

// The binary installs the instrumented allocator so the report's
// peak_alloc_bytes reflects the real workload footprint.
#[global_allocator]
static ALLOC: TrackingAlloc = TrackingAlloc::system();

const BENCH_NAME: &str = "eco_splice_tiles2048";
const TILES: usize = 512;
const WIRES_PER_TILE: usize = 4;
const WIRE_LENGTH: f64 = 500e-6;
/// The headline claim the gate enforces: a 0.1% edit re-verifies at least
/// this much faster than the cold sign-off.
const MIN_SPEEDUP: f64 = 100.0;

fn baseline_default() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("baselines/BENCH_eco.json")
}

struct Args {
    iters: usize,
    warmup: usize,
    out: PathBuf,
    baseline: PathBuf,
    threshold: f64,
    check: bool,
    bless: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        iters: 9,
        warmup: 1,
        out: PathBuf::from("BENCH_eco.json"),
        baseline: baseline_default(),
        threshold: DEFAULT_THRESHOLD,
        check: false,
        bless: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--iters" => args.iters = value("--iters")?.parse().map_err(|e| format!("{e}"))?,
            "--warmup" => args.warmup = value("--warmup")?.parse().map_err(|e| format!("{e}"))?,
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--baseline" => args.baseline = PathBuf::from(value("--baseline")?),
            "--threshold" => {
                args.threshold = value("--threshold")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--check" => args.check = true,
            "--bless" => args.bless = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.iters == 0 {
        return Err("--iters must be at least 1".to_owned());
    }
    Ok(args)
}

/// Extract the tiled wire field: `TILES` groups of `WIRES_PER_TILE`
/// minimum-pitch wires, each group six empty tracks from the next so
/// inter-tile coupling falls past the extractor's cutoff and the tiles
/// are genuinely independent clusters.
fn tiled_field(tech: &Technology) -> ParasiticDb {
    let seg = (WIRE_LENGTH / 20.0).clamp(5e-6, 50e-6);
    let mut wires = Vec::with_capacity(TILES * WIRES_PER_TILE);
    for t in 0..TILES {
        for w in 0..WIRES_PER_TILE {
            let track = (t * (WIRES_PER_TILE + 6) + w) as i64;
            wires.push(WireGeom::min_width(format!("t{t}_w{w}"), track, 0.0, WIRE_LENGTH, tech));
        }
    }
    extract(&wires, tech, seg)
}

/// The 0.1% ECO: scale one net's first ground capacitor. Rebuilding the
/// database from the same extraction and editing one element is exactly
/// what a SPEF re-extraction of a one-net fix produces.
fn perturbed(base: &Technology, net: &str, scale: f64) -> ParasiticDb {
    let mut db = tiled_field(base);
    let id = db.find_net(net).expect("edited net exists");
    let edited = db.net(id);
    let (node, farads) = *edited.ground_caps().first().expect("edited net has a ground cap");
    // NetParasitics has no in-place editor (parasitics are append-only by
    // design), so rebuild the one net with the scaled cap.
    let mut rebuilt = pcv_netlist::NetParasitics::new(edited.name());
    for _ in 1..edited.num_nodes() {
        rebuilt.add_node();
    }
    for &(a, b, ohms) in edited.resistors() {
        rebuilt.add_resistor(a, b, ohms);
    }
    for &(n, c) in edited.ground_caps() {
        rebuilt.add_ground_cap(n, if n == node && c == farads { c * scale } else { c });
    }
    for &n in edited.load_nodes() {
        rebuilt.mark_load(n);
    }
    *db.net_mut(id) = rebuilt;
    db
}

fn chip(db: ParasiticDb) -> ResidentChip {
    let victims: Vec<PNetId> = (0..db.num_nets()).map(PNetId).collect();
    ResidentChip::fixed_resistance(db, 1000.0, victims)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("eco_bench: {e}");
            return ExitCode::from(2);
        }
    };

    let tech = Technology::c025();
    let cache_dir = std::env::temp_dir().join(format!("pcv-eco-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    std::fs::create_dir_all(&cache_dir).expect("bench cache dir");
    let cache = cache_dir.join("chip.cache");
    let mk_engine = || {
        Engine::new(EngineConfig {
            workers: 0,
            cache_path: Some(cache.clone()),
            ..Default::default()
        })
    };

    // Two edit variants of the same net: alternating between them keeps
    // every timed ECO run's dirty clusters genuinely stale in the cache.
    let base = chip(tiled_field(&tech));
    let total = base.victims().len();
    let variants = [chip(perturbed(&tech, "t0_w0", 1.01)), chip(perturbed(&tech, "t0_w0", 1.02))];

    // The denominator: one cold sign-off over the whole chip, which also
    // seeds the session cache for the incremental runs.
    let t0 = Instant::now();
    let cold = mk_engine().verify_resident(&base, None).expect("cold sign-off verifies");
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(cold.chip.verdicts.len(), total, "bench workload must stay intact");
    assert_eq!(cold.stats.cache_misses, total, "cold run must analyze everything");

    let run_eco = |prev: &ResidentChip, next: &ResidentChip, timed: bool| -> f64 {
        let t0 = Instant::now();
        let outcome =
            mk_engine().eco_verify_resident(prev, next, false, None).expect("eco run verifies");
        let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(outcome.report.chip.verdicts.len(), total);
        if timed {
            // The point of the bench: only the dirty clusters re-analyze.
            assert_eq!(
                outcome.report.stats.cache_misses,
                outcome.plan.dirty.len(),
                "spliced run re-analyzed more than the plan's dirty set"
            );
            assert!(
                outcome.plan.dirty.len() <= WIRES_PER_TILE,
                "a one-net edit must stay inside its tile: {:?}",
                outcome.plan.dirty
            );
        }
        elapsed_ms
    };

    let mut prev = &base;
    for i in 0..args.warmup {
        let next = &variants[i % 2];
        run_eco(prev, next, false);
        prev = next;
    }
    mem::reset_peak();
    let mut samples_ms = Vec::with_capacity(args.iters);
    for i in 0..args.iters {
        let next = &variants[(args.warmup + i) % 2];
        samples_ms.push(run_eco(prev, next, true));
        prev = next;
    }
    let peak = mem::snapshot().map_or(0, |s| s.peak_bytes);
    let _ = std::fs::remove_dir_all(&cache_dir);

    let report = regression::summarize(BENCH_NAME, args.warmup, samples_ms, peak);
    let speedup = cold_ms / report.median_ms;
    eprintln!(
        "eco_bench: {} — cold {:.1} ms, eco median {:.3} ms ({speedup:.0}x), mad {:.3} ms, \
         peak heap {:.2} MiB",
        report.bench,
        cold_ms,
        report.median_ms,
        report.mad_ms,
        report.peak_alloc_bytes as f64 / (1024.0 * 1024.0)
    );
    if let Err(e) = report.write(&args.out) {
        eprintln!("eco_bench: cannot write {}: {e}", args.out.display());
        return ExitCode::from(2);
    }
    println!("{}", report.to_json());

    if args.bless {
        if let Some(dir) = args.baseline.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = report.write(&args.baseline) {
            eprintln!("eco_bench: cannot bless {}: {e}", args.baseline.display());
            return ExitCode::from(2);
        }
        eprintln!("eco_bench: blessed new baseline at {}", args.baseline.display());
        return ExitCode::SUCCESS;
    }

    if args.check {
        if speedup < MIN_SPEEDUP {
            eprintln!(
                "eco_bench: FAIL — 0.1% edit re-verified only {speedup:.1}x faster than cold \
                 (floor {MIN_SPEEDUP}x)"
            );
            return ExitCode::FAILURE;
        }
        let Some(baseline) = BenchReport::read(&args.baseline) else {
            eprintln!(
                "eco_bench: no readable baseline at {} (seed one with --bless)",
                args.baseline.display()
            );
            return ExitCode::from(2);
        };
        let verdict = regression::gate(&baseline, &report, args.threshold);
        eprintln!("eco_bench: {}", verdict.detail);
        if verdict.regressed {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
