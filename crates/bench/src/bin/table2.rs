//! Regenerate Table 2: interconnect delay with vs without coupling.

fn main() {
    let rows = pcv_bench::experiments::table2::run();
    print!("{}", pcv_bench::experiments::table2::to_text(&rows));
}
