//! `immunity` — print noise-immunity curves (critical glitch amplitude vs
//! pulse width) for a few representative receivers, the transistor-level
//! receiver analysis the paper lists as future work.

use pcv_cells::library::CellLibrary;
use pcv_xtalk::receiver::noise_immunity_curve;

fn main() {
    let lib = CellLibrary::standard_025();
    let widths = [0.05e-9, 0.1e-9, 0.2e-9, 0.5e-9, 1.0e-9, 2.0e-9];
    let vdd = 2.5;
    println!("noise-immunity curves (critical amplitude in V for a 50% output excursion)");
    print!("{:>10}", "width(ns)");
    for &w in &widths {
        print!("{:>9.2}", w * 1e9);
    }
    println!();
    for name in ["INVX1", "INVX4", "INVX16", "BUFX4", "NAND2X4", "NOR2X4"] {
        let cell = lib.cell(name).expect("cell exists");
        let curve =
            noise_immunity_curve(cell, &widths, 0.0, vdd, 0.5).expect("immunity analysis succeeds");
        print!("{name:>10}");
        for p in &curve {
            if p.critical_amplitude.is_finite() {
                print!("{:>9.2}", p.critical_amplitude);
            } else {
                print!("{:>9}", "-");
            }
        }
        println!();
    }
    println!("\nnarrow glitches need more amplitude; the wide-pulse limit is the DC threshold");
}
